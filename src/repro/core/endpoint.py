"""The per-(process, group) endpoint: everything one membership entails.

A :class:`GroupEndpoint` bundles the state and machinery a Newtop process
keeps for one of its groups (the paper's architecture, Fig. 3):

* the current membership view (and, optionally, its §6 signature form),
* the ordering engine (symmetric §4.1 or asymmetric §4.2),
* the stability tracker and retention buffer (§5.1),
* the time-silence mechanism (§4.1) and the failure suspector (§5.2),
* the group-view (membership agreement) process ``GV_x,i`` (§5.2),
* the flow controller (§7 / [11]),
* the *formation wait* state of a dynamically formed group (§5.3 step 5),
* the queue of application sends deferred by the blocking rules.

The endpoint deliberately contains no delivery logic: received application
messages are pushed into the process-wide delivery queue, and the process
combines the per-group deliverable bounds (safe1') and pops messages in
global order (safe2) -- that is how Newtop gets cross-group total order
(MD4') for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.asymmetric import AsymmetricOrdering
from repro.core.config import NewtopConfig, OrderingMode
from repro.core.flow_control import FlowController
from repro.core.membership import GroupViewProcess
from repro.core.messages import (
    ConfirmMessage,
    DataMessage,
    KIND_DATA,
    KIND_NULL,
    KIND_START_GROUP,
    RefuteMessage,
    SequencerRequest,
    SuspectMessage,
    Suspicion,
)
from repro.core.stability import StabilityTracker
from repro.core.suspector import FailureSuspector
from repro.core.symmetric import SymmetricOrdering
from repro.core.time_silence import TimeSilence
from repro.core.vectors import INFINITY
from repro.core.views import MembershipView, SignatureView
from repro.net import trace as trace_events


@dataclass
class PendingViewChange:
    """A confirmed detection awaiting installation (step viii tail).

    ``update_view(F, N)``: the view excluding ``removed`` is installed only
    once every message numbered ``<= threshold`` (``lnmn``) has been
    delivered.
    """

    removed: frozenset
    threshold: int


@dataclass
class _FormationWait:
    """Step 5 state of a dynamically formed group.

    While waiting for a ``start-group`` message from every view member, the
    group's deliverable bound is pinned to the largest start-number seen so
    far, and application sends in the group are deferred.
    """

    start_numbers: Dict[str, int] = field(default_factory=dict)

    def bound(self) -> float:
        """The provisional deliverable bound during the wait."""
        return float(max(self.start_numbers.values())) if self.start_numbers else 0.0


class GroupEndpoint:
    """One process's attachment to one group."""

    def __init__(
        self,
        process,
        group_id: str,
        members: Tuple[str, ...],
        mode: OrderingMode,
        formation_wait: bool = False,
    ) -> None:
        self.process = process
        self.group_id = group_id
        self.mode = mode
        config: NewtopConfig = process.config
        self.config = config
        own_id = process.process_id

        self.view = MembershipView.initial(group_id, members)
        self.signature_view: Optional[SignatureView] = (
            SignatureView.initial(group_id, members) if config.use_signature_views else None
        )
        if mode == OrderingMode.ASYMMETRIC:
            self.engine = AsymmetricOrdering(self)
        else:
            # ATOMIC_ONLY reuses the symmetric engine's bookkeeping; the
            # process-level delivery path simply does not wait for safe1'
            # in that mode.
            self.engine = SymmetricOrdering(self)
        self.stability = StabilityTracker(
            group_id,
            members,
            retention_limit=config.retention_limit,
            use_slab=config.use_slab_state,
        )
        metrics = process.sim.metrics
        self.flow = FlowController(
            config.flow_control_window,
            blocked_gauge=(
                metrics.push_gauge("flow.blocked_senders") if metrics is not None else None
            ),
        )
        self.suspector = FailureSuspector(
            sim=process.sim,
            own_id=own_id,
            members=members,
            suspicion_timeout=config.suspicion_timeout,
            check_interval=config.suspector_check_interval,
            notify=self._on_suspector_notification,
            on_tick=self._on_suspector_tick,
        )
        self.gv = GroupViewProcess(self, own_id, group_id)
        self.time_silence = TimeSilence(process.sim, config.omega, self._send_null)

        self.departed = False
        self.pending_view_changes: List[PendingViewChange] = []
        #: Asymmetric groups only -- view-cut markers received before the
        #: local detection confirmed: removed-set -> marker number.  While
        #: one is held, deliveries above the smallest cut are blocked so
        #: this member's old-view delivery set cannot outgrow its peers'.
        self._pending_cut_points: Dict[frozenset, int] = {}
        #: Asymmetric groups only -- detections confirmed locally before
        #: the sequencer's marker arrived: (removed-set, lnmn fallback).
        #: Deliveries keep flowing (the pre-marker stream belongs to the
        #: old view); the view change is created when the marker lands.
        self._detections_awaiting_cut: List[Tuple[frozenset, int]] = []
        #: Asymmetric groups only -- members whose suspicion was deferred
        #: once while the sequencer itself stood suspected (see
        #: :meth:`_on_suspector_notification`); a second silent timeout
        #: after that is accepted as failure evidence.
        self._failover_deferred: Set[str] = set()
        #: Application payloads deferred by the blocking rules / formation
        #: wait / flow control, in submission order.
        self.deferred_sends: List[object] = []
        #: Journey tracing (``sim.journeys`` is None unless the run asked
        #: for it); ``deferred_since`` parallels ``deferred_sends`` with the
        #: simulated time each payload was deferred, maintained only while
        #: tracing is on.
        self.journeys = process.sim.journeys
        self.deferred_since: List[float] = []
        self._formation_wait: Optional[_FormationWait] = _FormationWait() if formation_wait else None
        #: Messages dropped because their sender was excluded or unknown.
        self.discarded_from_excluded = 0

        self._record_view_installed()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Activate the time-silence mechanism and the failure suspector."""
        self.time_silence.start()
        self.suspector.start()

    def shutdown(self) -> None:
        """Stop all timers (departure, crash or teardown)."""
        self.departed = True
        self.time_silence.stop()
        self.suspector.stop()

    @property
    def active(self) -> bool:
        """Whether the endpoint still participates in the group."""
        return not self.departed and not self.process.crashed

    @property
    def in_formation_wait(self) -> bool:
        """Whether the endpoint is still in §5.3's step-5 wait."""
        return self._formation_wait is not None

    # ------------------------------------------------------------------
    # Deliverability (consumed by the process-level delivery loop)
    # ------------------------------------------------------------------
    def deliverable_bound(self) -> float:
        """This group's contribution to ``D_i`` (safe1')."""
        if not self.active:
            return INFINITY
        if self.mode == OrderingMode.ATOMIC_ONLY:
            # Atomic delivery bypasses the logical-clock gating (Fig. 3).
            return INFINITY
        if self._formation_wait is not None:
            return self._formation_wait.bound()
        return self.engine.deliverable_bound()

    def next_view_change_threshold(self) -> float:
        """Number above which no message may be delivered before the next
        pending view change is installed (infinity when none is pending).

        A view-cut marker received ahead of the local detection caps
        delivery the same way: messages the sequencer numbered above the
        cut belong to the next view and must not be delivered in this one.
        """
        threshold = INFINITY
        if self.pending_view_changes:
            threshold = float(self.pending_view_changes[0].threshold)
        if self._pending_cut_points:
            threshold = min(threshold, float(min(self._pending_cut_points.values())))
        return threshold

    # ------------------------------------------------------------------
    # Send path (called by the owning process)
    # ------------------------------------------------------------------
    def send_application(self, payload: object) -> str:
        """Disseminate an application message now (blocking rules already
        checked by the process).  Returns the end-to-end message id."""
        message_id = self.engine.send(payload, KIND_DATA)
        self.flow.note_sent(self.process.clock.value)
        return message_id

    def send_start_group(self) -> None:
        """Multicast the special ``start-group`` message (§5.3 step 4).

        Start-group messages are multicast directly in both ordering modes:
        they pre-date the group's application traffic, and their only role
        is to carry each member's proposed start-number.
        """
        process = self.process
        clock = process.clock.tick()
        message = DataMessage.start_group(
            sender=process.process_id,
            group=self.group_id,
            clock=clock,
            ldn=0,
        )
        if self.journeys is not None:
            self.journeys.created(
                message.msg_id, "formation", process.process_id, self.group_id,
                process.sim.now,
            )
        self.broadcast_data(message, cause="formation")

    def _send_null(self) -> None:
        """Time-silence callback: multicast a null message (§4.1).

        In an asymmetric group a member's nulls normally travel via the
        sequencer.  While that relay path looks dead -- the sequencer has
        been silent past the suspicion window, stands suspected, or is
        already excluded -- the member multicasts a plain (unsequenced)
        null directly: it carries no ordering weight (it never advances
        ``D_x``) but keeps the remaining members' failure suspectors fed so
        they do not cascade into suspecting each other while agreeing on
        the sequencer's failure.  Keying on silence rather than formal
        suspicion matters: a refutation can clear the sequencer suspicion
        (shipping one recovered message) without reviving the relay, and
        members must not fall mutually silent during the re-suspicion
        window that follows.
        """
        if not self.active:
            return
        sequencer_dead_path = False
        if self.mode == OrderingMode.ASYMMETRIC and not self.engine.is_sequencer():
            sequencer = self.engine.sequencer()
            heard = self.suspector.last_activity(sequencer)
            silent_for = (
                self.process.sim.now - heard if heard is not None else 0.0
            )
            sequencer_dead_path = (
                self.gv.is_suspected(sequencer)
                or self.gv.is_excluded(sequencer)
                or silent_for >= self.suspector.suspicion_timeout
            )
        if sequencer_dead_path:
            clock = self.process.clock.tick()
            message = DataMessage.null(
                sender=self.process.process_id,
                group=self.group_id,
                clock=clock,
                ldn=self.engine.ldn(),
            )
            if self.journeys is not None:
                self.journeys.created(
                    message.msg_id, "null_time_silence", self.process.process_id,
                    self.group_id, self.process.sim.now,
                )
            self.broadcast_data(message, cause="null_time_silence")
        else:
            self.engine.send(None, KIND_NULL)
        self.process.recorder.record(
            self.process.sim.now,
            trace_events.NULL_SEND,
            self.process.process_id,
            group=self.group_id,
            clock=self.process.clock.value,
        )

    def defer_send(self, payload: object, reason: str) -> None:
        """Queue an application payload blocked by ``reason``."""
        self.deferred_sends.append(payload)
        if self.journeys is not None:
            self.deferred_since.append(self.process.sim.now)
        self.process.recorder.record(
            self.process.sim.now,
            trace_events.BLOCKED_SEND,
            self.process.process_id,
            group=self.group_id,
            reason=reason,
            queue_length=len(self.deferred_sends),
        )

    # ------------------------------------------------------------------
    # Raw transmission helpers
    # ------------------------------------------------------------------
    def broadcast_data(self, message: DataMessage, cause: Optional[str] = None) -> None:
        """Transmit ``message`` to every other view member and loop it back
        to ourselves (a process delivers its own messages by executing the
        protocol)."""
        size = message.wire_size_bytes()
        for member in self.view.sorted_members():
            if member != self.process.process_id:
                self.process.transport_endpoint.send(
                    member, message, channel="newtop", size_bytes=size, cause=cause
                )
        self.time_silence.notify_sent()
        self.on_data_message(message, local_origin=True)

    def send_to_member(
        self, member: str, payload: object, cause: Optional[str] = None
    ) -> None:
        """Unicast a protocol message (e.g. a sequencer request) to ``member``.

        Deliberately does NOT reset the time-silence timer: a unicast
        request is inaudible to the group until the sequencer multicasts
        it, so counting it as "sending" would let a member whose sequencer
        is unreachable fall silent for everyone else while busily unicasting
        into the void -- peers would (wrongly, but irrefutably) suspect it.
        The timer resets when our request comes back sequenced, the moment
        the group actually heard us (:meth:`on_data_message`).
        """
        size = payload.wire_size_bytes() if hasattr(payload, "wire_size_bytes") else 0
        self.process.transport_endpoint.send(
            member, payload, channel="newtop", size_bytes=size, cause=cause
        )

    def mcast_membership(self, message: object, cause: Optional[str] = None) -> None:
        """The GV process's ``mcast`` primitive: transmit to every view
        member's GV process (delivered in sent order by the transport)."""
        size = message.wire_size_bytes() if hasattr(message, "wire_size_bytes") else 0
        for member in self.view.sorted_members():
            if member != self.process.process_id:
                self.process.transport_endpoint.send(
                    member, message, channel="newtop", size_bytes=size, cause=cause
                )

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_data_message(self, message: DataMessage, local_origin: bool = False) -> None:
        """Handle a group (data/null/start-group) message.

        ``local_origin`` marks the loop-back of our own multicast; it skips
        the membership filtering and the CA2 clock update (CA1 already ran).
        """
        if not self.active:
            return
        filter_key = message.sequenced_by or message.sender
        if not local_origin:
            if self.gv.is_excluded(filter_key) or filter_key not in self.view.members:
                self.discarded_from_excluded += 1
                if self.journeys is not None:
                    self.journeys.discarded(
                        message.msg_id, self.process.sim.now,
                        self.process.process_id, "excluded_sender",
                    )
                return
            if self.gv.is_suspected(filter_key):
                self.gv.hold_pending(filter_key, message)
                if self.journeys is not None:
                    self.journeys.held(
                        message.msg_id, self.process.sim.now,
                        self.process.process_id, "suspected:" + filter_key,
                    )
                return
            self.process.clock.observe(message.clock)
        if not local_origin and message.sender == self.process.process_id:
            # Our unicast request came back as a sequenced multicast: the
            # group just heard from us, so push the next liveness null out
            # by omega (see :meth:`send_to_member` for why the unicast
            # itself does not count).
            self.time_silence.notify_sent()
        # Liveness evidence for the suspector: both the logical sender and,
        # in asymmetric groups, the sequencer that relayed the message.
        self.suspector.heard_from(message.sender, message.clock)
        if message.sequenced_by is not None:
            self.suspector.heard_from(message.sequenced_by, message.clock)
        # Stability (§5.1): retain the message and fold in its ldn.
        self.stability.on_message(message, key=filter_key)
        if message.sequenced_by is not None:
            self.stability.record_global_ldn(message.ldn)
        self._after_stability_advance()
        # Ordering state (RV / last-sequenced number).
        self.engine.on_data(message)
        # Rule (iii) hook: a fresh message may refute gossip suspicions.
        if not local_origin:
            self.gv.on_data_from(filter_key, message.clock)
            if message.sender != filter_key:
                self.gv.on_data_from(message.sender, message.clock)
        # Formation wait (§5.3 step 5).
        if message.is_start_group and message.start_number is not None:
            self._on_start_group(message.sender, message.start_number)
        # Asymmetric end-of-view marker: the sequencer placed the pending
        # view change into its stream at this message's number.
        if message.is_view_cut:
            self._on_view_cut(message)
        # Only application messages enter the delivery queue; null and
        # start-group messages have done their job already.
        if message.is_application:
            if not local_origin:
                self.process.recorder.record(
                    self.process.sim.now,
                    trace_events.RECEIVE,
                    self.process.process_id,
                    group=self.group_id,
                    message_id=message.msg_id,
                    sender=message.sender,
                    clock=message.clock,
                )
            if self.mode == OrderingMode.ATOMIC_ONLY:
                # Atomic-only groups bypass the logical-clock gating
                # entirely (Fig. 3): deliver as soon as the message arrives.
                self.process.deliver_immediately(self, message)
            else:
                self.process.delivery_queue.enqueue(message)
        # Per-receipt follow-up; during a transport batch it is deferred to
        # the end of the batch (one pass per simulator event).
        if not self.process.in_receipt_batch:
            self.process.attempt_delivery()
            self.process.flush_deferred_sends()

    def on_sequencer_request(self, request: SequencerRequest) -> None:
        """Handle a unicast addressed to us as the group's sequencer."""
        if not self.active:
            return
        if self.gv.is_excluded(request.origin) or request.origin not in self.view.members:
            self.discarded_from_excluded += 1
            if self.journeys is not None:
                self.journeys.discarded(
                    request.request_id, self.process.sim.now,
                    self.process.process_id, "excluded_sender",
                )
            return
        if self.gv.is_suspected(request.origin):
            self.gv.hold_pending(request.origin, request)
            if self.journeys is not None:
                self.journeys.held(
                    request.request_id, self.process.sim.now,
                    self.process.process_id, "suspected:" + request.origin,
                )
            return
        self.suspector.heard_from(request.origin, request.origin_clock)
        self.engine.on_sequencer_request(request)

    def on_membership_message(self, src: str, message: object) -> None:
        """Handle a suspect/refute/confirm message from ``src``'s GV."""
        if not self.active:
            return
        self.suspector.heard_from(src, 0)
        self.gv.on_membership_message(src, message)

    def replay_pending(self, sender: str, items: List[object]) -> None:
        """Re-inject messages held while ``sender`` was under suspicion."""
        journeys = self.journeys
        for item in items:
            if journeys is not None:
                journeys.released_payload(
                    item, self.process.sim.now, self.process.process_id
                )
            if isinstance(item, DataMessage):
                self.on_data_message(item)
            elif isinstance(item, SequencerRequest):
                self.on_sequencer_request(item)
            elif isinstance(item, (SuspectMessage, RefuteMessage, ConfirmMessage)):
                self.gv.on_membership_message(sender, item)

    def recover_messages(self, messages: List[DataMessage]) -> None:
        """Feed messages recovered via a refutation back into the receive
        path (duplicates are absorbed by the delivery queue and the
        monotone vectors)."""
        for message in messages:
            self.on_data_message(message)

    # ------------------------------------------------------------------
    # Queries used by the GV process
    # ------------------------------------------------------------------
    def membership_clock_of(self, member: str) -> int:
        """Number of the latest message we hold from ``member``."""
        return self.suspector.last_clock(member)

    def retained_messages_from(self, member: str, above: int) -> List[DataMessage]:
        """Unstable retained messages of ``member`` numbered above ``above``."""
        return self.stability.buffer.messages_from(member, above=above)

    def record_membership_event(self, kind: str, **details) -> None:
        """Trace hook for the GV process."""
        self.process.recorder.record(
            self.process.sim.now,
            kind,
            self.process.process_id,
            group=self.group_id,
            **details,
        )

    # ------------------------------------------------------------------
    # Failure detection execution (step viii) and view installation
    # ------------------------------------------------------------------
    def execute_failure_detection(self, detection: frozenset) -> None:
        """Step (viii): discard post-``lnmn`` messages of the failed
        processes, unblock ``D``, and schedule the view installation."""
        removed = frozenset(suspicion.target for suspicion in detection)
        lnmn = min(suspicion.last_number for suspicion in detection)
        own_id = self.process.process_id
        # The discard bound depends on where the old view's stream ends.
        # When the cut is in *sequencer numbering* (the end-of-view marker,
        # or -- for a detection that removes the sequencer itself -- the
        # dead sequencer's agreed last number), each target's messages
        # survive up to *its own* agreed last number, clamped at the cut: a
        # multi-target detection must not cut one target's stream at
        # another (laggard) target's ln, because members that already
        # delivered the in-between messages cannot take them back, so
        # virtual synchrony would split.  When the cut is ``lnmn`` itself
        # (symmetric groups or marker disabled), everything above ``lnmn``
        # belongs to the next view and a removed member's messages there
        # can never be delivered again -- they are discarded exactly as in
        # the paper's step (viii).
        asymmetric = self.mode == OrderingMode.ASYMMETRIC
        sequencer_removed = asymmetric and self.view.sequencer() in removed
        sequencer_cut = (
            asymmetric
            and self.config.use_view_cut_marker
        )
        last_numbers: Dict[str, int] = {}
        for suspicion in detection:
            last_numbers[suspicion.target] = max(
                last_numbers.get(suspicion.target, 0), suspicion.last_number
            )
        failover_cut = (
            last_numbers[self.view.sequencer()] if sequencer_removed else None
        )
        for target in removed:
            if not sequencer_cut:
                above = lnmn
            elif sequencer_removed:
                above = min(last_numbers[target], failover_cut)
            else:
                above = last_numbers[target]
            discarded = self.process.delivery_queue.discard_from_sender(
                self.group_id, target, above_clock=above
            )
            self.discarded_from_excluded += len(discarded)
            if self.journeys is not None:
                for discarded_message in discarded:
                    self.journeys.discarded(
                        discarded_message.msg_id, self.process.sim.now,
                        own_id, "step_viii",
                    )
            own_discards = [m for m in discarded if m.sender == own_id]
            if own_discards:
                self.engine.on_own_messages_discarded(own_discards)
            self.stability.handle_member_removed(target, discard_above=above)
        self.engine.on_members_removed(removed, lnmn)
        threshold = self._view_change_threshold(removed, lnmn, failover_cut)
        if threshold is not None:
            self.pending_view_changes.append(
                PendingViewChange(removed=removed, threshold=threshold)
            )
            self.pending_view_changes.sort(key=lambda change: change.threshold)
        self.process.attempt_delivery()
        self.process.flush_deferred_sends()

    def _view_change_threshold(
        self,
        removed: frozenset,
        lnmn: int,
        failover_cut: Optional[int] = None,
    ) -> Optional[int]:
        """Where the view excluding ``removed`` cuts the delivery stream.

        Symmetric groups use ``lnmn`` directly: the receive-vector bound
        stalls at the failed members' last numbers, so ``lnmn`` is a cut
        every member reaches identically.  Asymmetric groups deliver by
        *sequencer* numbering, in which ``lnmn`` (the failed member's last
        number) marks no stream position -- the cut must come from the
        sequencer itself:

        * the sequencer, on executing the detection, sequences a view-cut
          marker and installs at the marker's number;
        * a member whose marker already arrived installs at the recorded
          cut;
        * a member that confirmed first parks the detection until the
          marker lands (``None``: no pending change yet) -- deliveries keep
          flowing because everything the sequencer numbers before the
          marker still belongs to the old view;
        * a detection that removes the sequencer cannot wait for a marker.
          It cuts at ``failover_cut`` -- the dead sequencer's *agreed* last
          number, which rule-(iii) refutation convergence makes identical
          at every survivor.  Survivors may already have delivered
          sequenced messages well past ``lnmn`` (another target's stale
          number), so cutting there would retroactively move delivered
          messages into the next view; everything the dead sequencer
          numbered is old-view at everyone.  Parked detections flush at the
          same cut, since their markers will never come.
        """
        if self.mode != OrderingMode.ASYMMETRIC or not self.config.use_view_cut_marker:
            return lnmn
        if self.view.sequencer() in removed:
            cut = failover_cut if failover_cut is not None else lnmn
            for awaiting, _fallback in self._detections_awaiting_cut:
                # The marker these detections were parked for will never
                # come; their old-view stream now truncates at the failover
                # cut, so re-discard what the per-target bound kept above it.
                for target in awaiting:
                    discarded = self.process.delivery_queue.discard_from_sender(
                        self.group_id, target, above_clock=cut
                    )
                    self.discarded_from_excluded += len(discarded)
                    self.stability.buffer.discard_sender_above(target, cut)
                self.pending_view_changes.append(
                    PendingViewChange(removed=awaiting, threshold=cut)
                )
            self._detections_awaiting_cut.clear()
            return cut
        if self.engine.is_sequencer():
            return self.engine.emit_view_cut(removed)
        cut = self._pending_cut_points.pop(removed, None)
        if cut is not None:
            return cut
        self._detections_awaiting_cut.append((removed, lnmn))
        return None

    def _on_view_cut(self, message: DataMessage) -> None:
        """A sequencer's end-of-view marker arrived (possibly before or
        after the local detection confirmed -- both orders are handled)."""
        removed = frozenset(message.payload or ())
        if not removed or self.process.process_id in removed:
            # A marker naming ourselves: our exclusion is driven by the
            # reciprocal-suspicion machinery, not by this cut.
            return
        if not removed <= self.view.members:
            # Stale marker (re-injected by a pending-message replay or a
            # refutation recovery after its view already installed): the
            # targets can never be detected again, so recording the cut
            # would cap delivery forever.
            return
        for index, (awaiting, _fallback) in enumerate(self._detections_awaiting_cut):
            if awaiting == removed:
                del self._detections_awaiting_cut[index]
                self.pending_view_changes.append(
                    PendingViewChange(removed=removed, threshold=message.clock)
                )
                self.pending_view_changes.sort(key=lambda change: change.threshold)
                return
        self._pending_cut_points[removed] = message.clock

    def maybe_install_views(self) -> bool:
        """Install pending view changes whose precondition is met.

        ``update_view(F, N)`` installs once (a) no message numbered
        ``<= N`` can still arrive -- i.e. the process-wide deliverable
        bound has reached ``N`` -- and (b) every received message numbered
        ``<= N`` has been delivered.  Returns True if at least one view was
        installed (the caller's delivery loop then re-evaluates bounds).
        """
        installed_any = False
        while self.pending_view_changes:
            change = self.pending_view_changes[0]
            bound = self.process.global_deliverable_bound()
            if bound < change.threshold:
                break
            if self.process.delivery_queue.has_pending_at_or_below(change.threshold):
                break
            self.pending_view_changes.pop(0)
            self._install_view(change)
            installed_any = True
        return installed_any

    def _install_view(self, change: PendingViewChange) -> None:
        actually_removed = change.removed & self.view.members
        if not actually_removed:
            return
        self.view = self.view.exclude(actually_removed)
        if self.signature_view is not None:
            self.signature_view = self.signature_view.exclude(actually_removed)
        for member in actually_removed:
            self.suspector.remove_member(member)
        self.engine.on_members_removed(actually_removed, change.threshold)
        self.engine.on_view_installed()
        self.gv.on_view_installed()
        # Cut bookkeeping whose targets are no longer all in the view can
        # never match a future detection (excluded processes are not
        # re-suspected); dropping it keeps a stale marker from capping
        # delivery forever.
        members = self.view.members
        self._pending_cut_points = {
            targets: cut
            for targets, cut in self._pending_cut_points.items()
            if targets <= members
        }
        self._detections_awaiting_cut = [
            (targets, fallback)
            for targets, fallback in self._detections_awaiting_cut
            if targets <= members
        ]
        self._record_view_installed()
        if self.mode == OrderingMode.ASYMMETRIC:
            # Give the remaining members a fresh suspicion window so the
            # sequencer change does not cascade into further suspicions.
            self._failover_deferred.clear()
            for member in self.view.members:
                if member != self.process.process_id:
                    self.suspector.clear_suspicion(member)
        if self._formation_wait is not None:
            self._check_formation_complete()

    def _record_view_installed(self) -> None:
        details = {
            "members": self.view.sorted_members(),
            "index": self.view.index,
        }
        if self.signature_view is not None:
            details["signatures"] = tuple(
                (signature.process, signature.exclusions)
                for signature in sorted(
                    self.signature_view.signatures(), key=lambda s: s.process
                )
            )
        self.process.recorder.record(
            self.process.sim.now,
            trace_events.VIEW_INSTALL,
            self.process.process_id,
            group=self.group_id,
            **details,
        )

    # ------------------------------------------------------------------
    # Formation wait (§5.3 step 5)
    # ------------------------------------------------------------------
    def _on_start_group(self, sender: str, start_number: int) -> None:
        if self._formation_wait is None:
            return
        wait = self._formation_wait
        wait.start_numbers[sender] = max(
            wait.start_numbers.get(sender, 0), start_number
        )
        self._check_formation_complete()

    def _check_formation_complete(self) -> None:
        wait = self._formation_wait
        if wait is None:
            return
        if not set(self.view.members) <= set(wait.start_numbers):
            return
        start_number_max = max(
            wait.start_numbers[member] for member in self.view.members
        )
        self._formation_wait = None
        self.engine.raise_floor(float(start_number_max))
        self.process.clock.advance_to(start_number_max)
        self.process.recorder.record(
            self.process.sim.now,
            trace_events.GROUP_FORMED,
            self.process.process_id,
            group=self.group_id,
            start_number=start_number_max,
            members=self.view.sorted_members(),
        )
        self.process.attempt_delivery()
        self.process.flush_deferred_sends()

    # ------------------------------------------------------------------
    # Suspector wiring
    # ------------------------------------------------------------------
    def _on_suspector_notification(self, suspicion: Suspicion) -> None:
        if not self.active:
            return
        if self.mode == OrderingMode.ASYMMETRIC:
            sequencer = self.view.sequencer()
            if suspicion.target != sequencer and self.process.process_id != sequencer:
                # In an asymmetric group a member is only heard *through*
                # the sequencer, so its silence is meaningful evidence only
                # while the sequencer itself is demonstrably alive.  While
                # the sequencer has gone quiet but is not yet suspected,
                # defer the member's suspicion until the sequencer question
                # settles.  Once the sequencer *is* suspected the failover
                # agreement runs over direct membership traffic, so a live
                # member proves its own liveness (suspect/refute/confirm
                # arrivals refresh the suspector).  Grant each member one
                # further full timeout of that traffic; a member still
                # silent after it is accepted as failed -- deferring
                # forever would deadlock the failover whenever a member
                # crashed together with the sequencer (the agreement would
                # await its confirmation indefinitely).
                sequencer_silent_for = self.process.sim.now - self._last_heard_sequencer()
                sequencer_fresh = sequencer_silent_for < 0.5 * self.suspector.suspicion_timeout
                if not self.gv.is_suspected(sequencer):
                    if not sequencer_fresh:
                        self.suspector.clear_suspicion(suspicion.target)
                        return
                elif suspicion.target not in self._failover_deferred:
                    self._failover_deferred.add(suspicion.target)
                    self.suspector.clear_suspicion(suspicion.target)
                    return
        self.gv.on_suspector_notification(suspicion)

    def _on_suspector_tick(self) -> None:
        """Periodic heartbeat from the suspector's check loop: re-announce
        suspicions that have sat unresolved for a full timeout, so gossip
        lost to a transient partition converges after the heal."""
        if not self.active:
            return
        self.gv.regossip_unresolved(self.suspector.suspicion_timeout)

    def _last_heard_sequencer(self) -> float:
        sequencer = self.view.sequencer()
        last = self.suspector.last_heard(sequencer)
        return last if last is not None else self.process.sim.now

    # ------------------------------------------------------------------
    # Stability / flow-control follow-ups
    # ------------------------------------------------------------------
    def _after_stability_advance(self) -> None:
        bound = self.stability.stability_bound()
        self.flow.note_stability(bound)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroupEndpoint(process={self.process.process_id!r}, group={self.group_id!r}, "
            f"view={self.view.describe()}, mode={self.mode.value})"
        )
