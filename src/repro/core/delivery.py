"""The delivery queue: conditions *safe1'* and *safe2* (§4.1).

Received messages are parked here until they become deliverable.  For a
process ``Pi`` belonging to groups ``G_i``:

* **safe1'** -- a received message ``m`` is deliverable once
  ``m.c <= D_i`` where ``D_i = min{ D_x,i | g_x in G_i }``.  The per-group
  ``D_x,i`` values are computed by the ordering engines (receive-vector
  minimum for symmetric groups, last-sequenced number for asymmetric
  groups); the queue only sees their combined minimum.
* **safe2** -- deliverable messages are delivered in non-decreasing order
  of their numbers, with a fixed pre-determined tie-break among equal
  numbers.  The tie-break used here is ``(m.c, sender id, group id,
  message id)``, which every process evaluates identically.

The queue serves *all* of the process's groups at once -- that is exactly
how Newtop extends total order across group boundaries (MD4') with no
extra machinery.

Null and start-group messages take part in ordering (their numbers advance
``D``) but are not handed to the application; the queue reports them as
internal deliveries so traces can account for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.errors import DeliveryOrderViolation
from repro.core.messages import DataMessage


def delivery_sort_key(message: DataMessage) -> Tuple[int, str, str, str]:
    """The fixed pre-determined order imposed on equal-numbered messages."""
    return (message.clock, message.sender, message.group, message.msg_id)


@dataclass(frozen=True)
class Delivery:
    """One message popped from the queue in delivery order."""

    message: DataMessage
    #: Whether the message should be handed to the application (False for
    #: null and start-group messages, which are protocol-internal).
    to_application: bool


class DeliveryQueue:
    """Cross-group pending-message pool with total-order pop."""

    def __init__(self) -> None:
        self._pending: Dict[str, DataMessage] = {}
        self._delivered_ids: Set[str] = set()
        self._last_delivered_key: Optional[Tuple[int, str, str, str]] = None
        self.delivered_count = 0
        self.duplicate_count = 0

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    def enqueue(self, message: DataMessage) -> bool:
        """Add a received message to the pool.

        Duplicates (same message id already pending or already delivered,
        e.g. a message recovered via a refute that we had in fact received)
        are ignored.  Returns True if the message was actually added.
        """
        if message.msg_id in self._delivered_ids or message.msg_id in self._pending:
            self.duplicate_count += 1
            return False
        self._pending[message.msg_id] = message
        return True

    def discard_from_sender(self, group: str, sender: str, above_clock: int) -> List[DataMessage]:
        """Remove pending messages of ``sender`` in ``group`` numbered above
        ``above_clock`` (step (viii): rejected messages of failed processes).

        Returns the messages removed, so callers can trace the discards.
        """
        doomed = [
            message
            for message in self._pending.values()
            if message.group == group
            and (message.sender == sender or message.sequenced_by == sender)
            and message.clock > above_clock
        ]
        for message in doomed:
            del self._pending[message.msg_id]
        return doomed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of messages waiting to become deliverable."""
        return len(self._pending)

    def pending_messages(self, group: Optional[str] = None) -> List[DataMessage]:
        """Pending messages (optionally restricted to one group), sorted in
        the delivery order they would eventually be delivered in."""
        messages = [
            message
            for message in self._pending.values()
            if group is None or message.group == group
        ]
        return sorted(messages, key=delivery_sort_key)

    def has_pending_at_or_below(self, bound: float, group: Optional[str] = None) -> bool:
        """Whether any pending message is numbered ``<= bound``.

        Used by view installation to decide whether every message that must
        precede the new view has been delivered.
        """
        return any(
            message.clock <= bound
            for message in self._pending.values()
            if group is None or message.group == group
        )

    def was_delivered(self, msg_id: str) -> bool:
        """Whether a message with this id has already been delivered."""
        return msg_id in self._delivered_ids

    @property
    def last_delivered_clock(self) -> Optional[int]:
        """Number of the most recently delivered message (None initially)."""
        return self._last_delivered_key[0] if self._last_delivered_key else None

    # ------------------------------------------------------------------
    # Pop deliverable messages
    # ------------------------------------------------------------------
    def pop_deliverable(self, bound: float) -> List[Delivery]:
        """Remove and return every pending message numbered ``<= bound``,
        in delivery order (safe2).

        Raises :class:`DeliveryOrderViolation` if honouring the request
        would deliver a message that sorts *before* something already
        delivered -- that would mean ``D`` was allowed to advance past a
        message that had not yet arrived, i.e. a protocol bug; the check
        costs one comparison per delivery and turns silent misordering into
        an immediate failure.
        """
        deliverable = [
            message for message in self._pending.values() if message.clock <= bound
        ]
        deliverable.sort(key=delivery_sort_key)
        deliveries: List[Delivery] = []
        for message in deliverable:
            key = delivery_sort_key(message)
            if self._last_delivered_key is not None and key < self._last_delivered_key:
                raise DeliveryOrderViolation(
                    f"delivery of {message.msg_id} (key {key}) would precede the "
                    f"previously delivered key {self._last_delivered_key}"
                )
            self._last_delivered_key = key
            del self._pending[message.msg_id]
            self._delivered_ids.add(message.msg_id)
            self.delivered_count += 1
            deliveries.append(
                Delivery(message=message, to_application=message.is_application)
            )
        return deliveries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeliveryQueue(pending={len(self._pending)}, "
            f"delivered={self.delivered_count})"
        )
