"""The delivery queue: conditions *safe1'* and *safe2* (§4.1).

Received messages are parked here until they become deliverable.  For a
process ``Pi`` belonging to groups ``G_i``:

* **safe1'** -- a received message ``m`` is deliverable once
  ``m.c <= D_i`` where ``D_i = min{ D_x,i | g_x in G_i }``.  The per-group
  ``D_x,i`` values are computed by the ordering engines (receive-vector
  minimum for symmetric groups, last-sequenced number for asymmetric
  groups); the queue only sees their combined minimum.
* **safe2** -- deliverable messages are delivered in non-decreasing order
  of their numbers, with a fixed pre-determined tie-break among equal
  numbers.  The tie-break used here is ``(m.c, sender id, group id,
  message id)``, which every process evaluates identically.

The queue serves *all* of the process's groups at once -- that is exactly
how Newtop extends total order across group boundaries (MD4') with no
extra machinery.

Null and start-group messages take part in ordering (their numbers advance
``D``) but are not handed to the application; the queue reports them as
internal deliveries so traces can account for them.

Indexing
--------
The queue is on the per-receipt hot path: every received message triggers a
delivery attempt, so a full rescan of the pending pool per receipt would be
O(n) per message and O(n^2) per run.  Instead the pool is indexed twice:

* a **min-heap** of ``(sort key, msg id)`` pairs ordered by the safe2 key,
  so :meth:`pop_deliverable` releases the ``k`` deliverable messages in
  O(k log n) and :meth:`has_pending_at_or_below` peeks in O(1) amortised;
* **per-origin FIFO deques** keyed ``(group, member)`` (a message is filed
  under both its sender and, in asymmetric groups, its sequencer), so the
  membership protocol's :meth:`discard_from_sender` touches only that
  member's messages instead of the whole pool.

Removals initiated through one index are lazy in the other: an entry whose
message id is no longer pending is skipped (and dropped) when encountered.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.errors import DeliveryOrderViolation
from repro.core.messages import DataMessage


def delivery_sort_key(message: DataMessage) -> Tuple[int, str, str, str]:
    """The fixed pre-determined order imposed on equal-numbered messages."""
    return (message.clock, message.sender, message.group, message.msg_id)


@dataclass(frozen=True)
class Delivery:
    """One message popped from the queue in delivery order."""

    message: DataMessage
    #: Whether the message should be handed to the application (False for
    #: null and start-group messages, which are protocol-internal).
    to_application: bool


class DeliveryQueue:
    """Cross-group pending-message pool with total-order pop."""

    def __init__(self) -> None:
        self._pending: Dict[str, DataMessage] = {}
        #: Safe2-ordered heap of (sort key, msg id); lazily pruned.
        self._heap: List[Tuple[Tuple[int, str, str, str], str]] = []
        #: (group, origin member) -> msg ids in arrival order; lazily pruned.
        self._by_origin: Dict[Tuple[str, str], Deque[str]] = {}
        self._delivered_ids: set = set()
        self._last_delivered_key: Optional[Tuple[int, str, str, str]] = None
        self.delivered_count = 0
        self.duplicate_count = 0

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    def enqueue(self, message: DataMessage) -> bool:
        """Add a received message to the pool.

        Duplicates (same message id already pending or already delivered,
        e.g. a message recovered via a refute that we had in fact received)
        are ignored.  Returns True if the message was actually added.
        """
        if message.msg_id in self._delivered_ids or message.msg_id in self._pending:
            self.duplicate_count += 1
            return False
        self._pending[message.msg_id] = message
        heapq.heappush(self._heap, (delivery_sort_key(message), message.msg_id))
        self._origin_deque(message.group, message.sender).append(message.msg_id)
        if message.sequenced_by is not None and message.sequenced_by != message.sender:
            self._origin_deque(message.group, message.sequenced_by).append(message.msg_id)
        return True

    def _origin_deque(self, group: str, member: str) -> Deque[str]:
        key = (group, member)
        queue = self._by_origin.get(key)
        if queue is None:
            self._by_origin[key] = queue = deque()
        return queue

    def discard_from_sender(self, group: str, sender: str, above_clock: int) -> List[DataMessage]:
        """Remove pending messages of ``sender`` in ``group`` numbered above
        ``above_clock`` (step (viii): rejected messages of failed processes).

        ``sender`` matches both the logical sender and the sequencer a
        message travelled through.  Returns the messages removed, so callers
        can trace the discards.  Only this origin's index is walked; the
        heap entries of removed messages are pruned lazily.
        """
        queue = self._by_origin.get((group, sender))
        if not queue:
            return []
        doomed: List[DataMessage] = []
        kept: Deque[str] = deque()
        for msg_id in queue:
            message = self._pending.get(msg_id)
            if message is None:
                continue  # already delivered or discarded via the other index
            if message.clock > above_clock:
                doomed.append(message)
                del self._pending[msg_id]
            else:
                kept.append(msg_id)
        if kept:
            self._by_origin[(group, sender)] = kept
        else:
            del self._by_origin[(group, sender)]
        return doomed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Number of messages waiting to become deliverable."""
        return len(self._pending)

    def pending_messages(self, group: Optional[str] = None) -> List[DataMessage]:
        """Pending messages (optionally restricted to one group), sorted in
        the delivery order they would eventually be delivered in."""
        messages = [
            message
            for message in self._pending.values()
            if group is None or message.group == group
        ]
        return sorted(messages, key=delivery_sort_key)

    def has_pending_at_or_below(self, bound: float, group: Optional[str] = None) -> bool:
        """Whether any pending message is numbered ``<= bound``.

        Used by view installation to decide whether every message that must
        precede the new view has been delivered.  The group-agnostic form
        (the hot one) is an O(1) amortised heap peek.
        """
        if group is None:
            head = self._peek()
            return head is not None and head[0][0] <= bound
        return any(
            message.clock <= bound
            for message in self._pending.values()
            if message.group == group
        )

    def _peek(self) -> Optional[Tuple[Tuple[int, str, str, str], str]]:
        """Smallest live heap entry, pruning stale ones."""
        heap = self._heap
        while heap:
            key, msg_id = heap[0]
            message = self._pending.get(msg_id)
            if message is None or delivery_sort_key(message) != key:
                heapq.heappop(heap)  # stale: delivered, discarded, or re-enqueued
                continue
            return heap[0]
        return None

    def was_delivered(self, msg_id: str) -> bool:
        """Whether a message with this id has already been delivered."""
        return msg_id in self._delivered_ids

    @property
    def last_delivered_clock(self) -> Optional[int]:
        """Number of the most recently delivered message (None initially)."""
        return self._last_delivered_key[0] if self._last_delivered_key else None

    # ------------------------------------------------------------------
    # Pop deliverable messages
    # ------------------------------------------------------------------
    def pop_deliverable(self, bound: float) -> List[Delivery]:
        """Remove and return every pending message numbered ``<= bound``,
        in delivery order (safe2), in O(k log n) for k deliveries.

        Raises :class:`DeliveryOrderViolation` if honouring the request
        would deliver a message that sorts *before* something already
        delivered -- that would mean ``D`` was allowed to advance past a
        message that had not yet arrived, i.e. a protocol bug; the check
        costs one comparison per delivery and turns silent misordering into
        an immediate failure.
        """
        deliveries: List[Delivery] = []
        while True:
            head = self._peek()
            if head is None or head[0][0] > bound:
                break
            key, msg_id = head
            # Check the safe2 invariant *before* popping, so a violation
            # leaves the offending message in the queue as evidence.
            if self._last_delivered_key is not None and key < self._last_delivered_key:
                raise DeliveryOrderViolation(
                    f"delivery of {msg_id} (key {key}) would precede the "
                    f"previously delivered key {self._last_delivered_key}"
                )
            heapq.heappop(self._heap)
            message = self._pending.pop(msg_id)
            self._last_delivered_key = key
            self._delivered_ids.add(msg_id)
            self.delivered_count += 1
            self._prune_origin(message.group, message.sender)
            if message.sequenced_by is not None and message.sequenced_by != message.sender:
                self._prune_origin(message.group, message.sequenced_by)
            deliveries.append(
                Delivery(message=message, to_application=message.is_application)
            )
        return deliveries

    def _prune_origin(self, group: str, member: str) -> None:
        """Drop no-longer-pending ids from the head of one origin deque.

        Messages deliver in roughly arrival order per origin, so popping
        stale heads after each delivery keeps the deques bounded by the
        live pending count (amortised O(1) per delivery).
        """
        key = (group, member)
        queue = self._by_origin.get(key)
        if queue is None:
            return
        pending = self._pending
        while queue and queue[0] not in pending:
            queue.popleft()
        if not queue:
            del self._by_origin[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeliveryQueue(pending={len(self._pending)}, "
            f"delivered={self.delivered_count})"
        )
