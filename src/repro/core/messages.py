"""Protocol message types and wire-size accounting.

One of Newtop's headline claims (§2, §6) is *low and bounded message space
overhead*: the protocol-related information carried by a multicast is a
handful of scalar fields -- sender, group, message number ``m.c`` and the
stability hint ``m.ldn`` -- independent of group size and of how many
groups overlap.  This module defines every message exchanged by the
implementation and, for each, an explicit estimate of its wire size so the
benchmark harness can compare Newtop's overhead against the ISIS
vector-clock and Psync context-graph baselines byte-for-byte.

Message families
----------------
* :class:`DataMessage` -- application multicasts, null (time-silence)
  messages and the special ``start-group`` message of §5.3.
* :class:`SequencerRequest` -- the unicast a non-sequencer member sends to
  the group's sequencer in the asymmetric protocol (§4.2).
* :class:`SuspectMessage`, :class:`RefuteMessage`, :class:`ConfirmMessage`
  -- the membership-agreement traffic of §5.2 (steps (i)-(vii)).
* :class:`FormGroupInvite`, :class:`FormGroupVote` -- the two-phase group
  formation protocol of §5.3 (steps 1-3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

# --------------------------------------------------------------------------
# Wire-size model
# --------------------------------------------------------------------------
#: Bytes assumed per scalar field (identifiers, counters) on the wire.
SCALAR_BYTES = 8
#: Bytes assumed for a globally unique message identifier.
MESSAGE_ID_BYTES = 16
#: Bytes assumed for a one-byte tag (message kind, boolean flags).
TAG_BYTES = 1


def estimate_payload_bytes(payload: object) -> int:
    """Rough, deterministic estimate of an application payload's size.

    The simulation never serialises payloads; this estimate exists purely
    so overhead ratios (protocol bytes / total bytes) are meaningful.
    """
    if payload is None:
        return 0
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (int, float)):
        return SCALAR_BYTES
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_payload_bytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            estimate_payload_bytes(key) + estimate_payload_bytes(value)
            for key, value in payload.items()
        )
    return len(repr(payload).encode("utf-8"))


# --------------------------------------------------------------------------
# Data-plane messages
# --------------------------------------------------------------------------
#: Message kinds carried by :class:`DataMessage`.
KIND_DATA = "data"
KIND_NULL = "null"
KIND_START_GROUP = "start_group"
#: Sequenced end-of-view marker emitted by an asymmetric group's sequencer
#: when it executes a failure detection: the marker's ``m.c`` is the exact
#: stream position at which the surviving members cut over to the new view.
KIND_VIEW_CUT = "view_cut"

_message_counter = itertools.count(1)


def _next_message_id(sender: str) -> str:
    """Globally unique message identifier (unique within one interpreter)."""
    return f"{sender}#{next(_message_counter)}"


def reset_message_counter() -> None:
    """Restart message-id numbering from 1.

    Message ids participate in the fixed safe2 tie-break, so two runs of
    the same experiment are byte-identical only if they start from the
    same counter state.  The experiment layers (one session per sweep
    cell / scenario) call this at cell start so a cell's results do not
    depend on how many cells ran before it in the same interpreter --
    which is exactly what makes serial and multi-process sweep execution
    produce identical reports.  Never call it while a session is live:
    a session's ids must stay unique within its own simulation.
    """
    global _message_counter
    _message_counter = itertools.count(1)


@dataclass(frozen=True)
class DataMessage:
    """A message multicast within one group.

    Field names follow the paper: ``clock`` is ``m.c`` (the Lamport number
    assigned under CA1), ``ldn`` is ``m.ldn`` (the sender's largest
    deliverable number, i.e. its current ``D_x`` for the message's group,
    piggybacked for stability tracking, §5.1).
    """

    msg_id: str
    sender: str
    group: str
    clock: int
    ldn: int
    payload: object = None
    kind: str = KIND_DATA
    #: For ``start-group`` messages only: the proposed start-number (§5.3).
    start_number: Optional[int] = None
    #: For asymmetric groups: the sequencer that assigned ``clock`` and
    #: multicast the message (§4.2).  ``None`` in symmetric groups.
    sequenced_by: Optional[str] = None
    #: For asymmetric groups: the request id of the origin's unicast, echoed
    #: back so the origin can clear its Send-Blocking-Rule bookkeeping.
    origin_request: Optional[str] = None

    @property
    def is_null(self) -> bool:
        """True for time-silence null messages (never delivered to the app)."""
        return self.kind == KIND_NULL

    @property
    def is_start_group(self) -> bool:
        """True for the special first message of a newly formed group."""
        return self.kind == KIND_START_GROUP

    @property
    def is_view_cut(self) -> bool:
        """True for the asymmetric end-of-view marker (protocol-internal)."""
        return self.kind == KIND_VIEW_CUT

    @property
    def is_application(self) -> bool:
        """True for messages that carry application payloads."""
        return self.kind == KIND_DATA

    def protocol_overhead_bytes(self) -> int:
        """Bytes of protocol-related information in this message.

        sender + group + clock + ldn identifiers/counters, the message id,
        a kind tag, and (for start-group messages) the start-number.
        """
        overhead = 4 * SCALAR_BYTES + MESSAGE_ID_BYTES + TAG_BYTES
        if self.start_number is not None:
            overhead += SCALAR_BYTES
        if self.sequenced_by is not None:
            overhead += SCALAR_BYTES
        if self.origin_request is not None:
            overhead += MESSAGE_ID_BYTES
        return overhead

    def wire_size_bytes(self) -> int:
        """Total estimated bytes on the wire (overhead + payload)."""
        return self.protocol_overhead_bytes() + estimate_payload_bytes(self.payload)

    @staticmethod
    def application(sender: str, group: str, clock: int, ldn: int, payload: object) -> "DataMessage":
        """Build an application multicast."""
        return DataMessage(
            msg_id=_next_message_id(sender),
            sender=sender,
            group=group,
            clock=clock,
            ldn=ldn,
            payload=payload,
            kind=KIND_DATA,
        )

    @staticmethod
    def null(sender: str, group: str, clock: int, ldn: int) -> "DataMessage":
        """Build a time-silence null message (§4.1)."""
        return DataMessage(
            msg_id=_next_message_id(sender),
            sender=sender,
            group=group,
            clock=clock,
            ldn=ldn,
            payload=None,
            kind=KIND_NULL,
        )

    @staticmethod
    def sequenced(
        origin: str,
        group: str,
        clock: int,
        ldn: int,
        payload: object,
        kind: str,
        sequencer: str,
        origin_request: Optional[str],
    ) -> "DataMessage":
        """Build the multicast a sequencer emits for a member's unicast (§4.2).

        When the message originates from a member's unicast, the request id
        is reused as the message id so that the identifier is stable from
        the origin's send to every member's delivery (traces and blocking
        bookkeeping rely on this).
        """
        return DataMessage(
            msg_id=origin_request if origin_request is not None else _next_message_id(sequencer),
            sender=origin,
            group=group,
            clock=clock,
            ldn=ldn,
            payload=payload,
            kind=kind,
            sequenced_by=sequencer,
            origin_request=origin_request,
        )

    @staticmethod
    def start_group(sender: str, group: str, clock: int, ldn: int) -> "DataMessage":
        """Build the special ``start-group`` message (§5.3 step 4).

        Its start-number is, per the paper, the ``m.c`` of the message
        itself.
        """
        return DataMessage(
            msg_id=_next_message_id(sender),
            sender=sender,
            group=group,
            clock=clock,
            ldn=ldn,
            payload=None,
            kind=KIND_START_GROUP,
            start_number=clock,
        )


@dataclass(frozen=True)
class SequencerRequest:
    """Unicast from a member to the group's sequencer (asymmetric, §4.2).

    ``origin_clock`` is the number the origin assigned under CA1 when it
    handed the message to the transport; the sequencer will assign a fresh
    (larger) number when it multicasts the message to the group.
    """

    request_id: str
    origin: str
    group: str
    origin_clock: int
    payload: object = None
    kind: str = KIND_DATA
    #: The origin's current deliverable bound for the group, aggregated by
    #: the sequencer into the ``ldn`` of sequenced multicasts so stability
    #: (§5.1) also works in asymmetric groups.
    origin_ldn: int = 0

    @property
    def is_null(self) -> bool:
        """Whether this request carries a null (time-silence) message."""
        return self.kind == KIND_NULL

    def protocol_overhead_bytes(self) -> int:
        """Bytes of protocol-related information in the unicast."""
        return 4 * SCALAR_BYTES + MESSAGE_ID_BYTES + TAG_BYTES

    def wire_size_bytes(self) -> int:
        """Total estimated bytes on the wire."""
        return self.protocol_overhead_bytes() + estimate_payload_bytes(self.payload)

    @staticmethod
    def make(
        origin: str,
        group: str,
        origin_clock: int,
        payload: object,
        kind: str = KIND_DATA,
        origin_ldn: int = 0,
    ) -> "SequencerRequest":
        """Build a sequencer request with a fresh request id."""
        return SequencerRequest(
            request_id=_next_message_id(origin),
            origin=origin,
            group=group,
            origin_clock=origin_clock,
            payload=payload,
            kind=kind,
            origin_ldn=origin_ldn,
        )


# --------------------------------------------------------------------------
# Membership (GV) messages, §5.2
# --------------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class Suspicion:
    """A suspicion ``{Pk, ln}``: ``target`` is suspected to have crashed and
    ``last_number`` is the number of the last message the suspecting process
    received from it."""

    target: str
    last_number: int

    def wire_size_bytes(self) -> int:
        """Bytes needed to encode the suspicion."""
        return 2 * SCALAR_BYTES


@dataclass(frozen=True)
class SuspectMessage:
    """``(i, suspect, {Pk, ln})`` -- step (i) of the membership algorithm."""

    origin: str
    group: str
    suspicion: Suspicion

    def wire_size_bytes(self) -> int:
        """Total estimated bytes on the wire."""
        return 2 * SCALAR_BYTES + TAG_BYTES + self.suspicion.wire_size_bytes()


@dataclass(frozen=True)
class RefuteMessage:
    """``(i, refute, {Pk, ln})`` -- steps (iii)/(iv).

    ``recovered`` piggybacks the suspected process's messages numbered above
    ``ln`` so the suspecting processes can retrieve what they missed ("all
    received m of Pk, m.c > ln, can be piggybacked on the refute message").
    """

    origin: str
    group: str
    suspicion: Suspicion
    recovered: Tuple[DataMessage, ...] = ()

    def wire_size_bytes(self) -> int:
        """Total estimated bytes on the wire, including piggybacked messages."""
        size = 2 * SCALAR_BYTES + TAG_BYTES + self.suspicion.wire_size_bytes()
        return size + sum(message.wire_size_bytes() for message in self.recovered)


@dataclass(frozen=True)
class ConfirmMessage:
    """``(i, confirmed, detection)`` -- steps (v)/(vi)."""

    origin: str
    group: str
    detection: frozenset  # frozenset[Suspicion]

    def wire_size_bytes(self) -> int:
        """Total estimated bytes on the wire."""
        return (
            2 * SCALAR_BYTES
            + TAG_BYTES
            + sum(suspicion.wire_size_bytes() for suspicion in self.detection)
        )


# --------------------------------------------------------------------------
# Group-formation messages, §5.3
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class FormGroupInvite:
    """Step 1: the initiator's ``form group gn`` invitation.

    Carries the identities of all intended members so that every invitee can
    diffuse its vote to the full intended membership (step 2).
    """

    initiator: str
    group: str
    members: Tuple[str, ...]
    mode: str = "symmetric"

    def wire_size_bytes(self) -> int:
        """Total estimated bytes on the wire."""
        return (2 + len(self.members)) * SCALAR_BYTES + TAG_BYTES


@dataclass(frozen=True)
class FormGroupVote:
    """Steps 2-3: a member's diffused yes/no decision on the new group."""

    voter: str
    group: str
    accept: bool
    members: Tuple[str, ...]

    def wire_size_bytes(self) -> int:
        """Total estimated bytes on the wire."""
        return (2 + len(self.members)) * SCALAR_BYTES + 2 * TAG_BYTES


#: Union of every message type the transport may carry for Newtop.
ProtocolMessage = (
    DataMessage,
    SequencerRequest,
    SuspectMessage,
    RefuteMessage,
    ConfirmMessage,
    FormGroupInvite,
    FormGroupVote,
)
