"""Sender-side flow control.

The paper's concluding remarks mention that the authors "have also designed
and implemented a flow control mechanism that ensures that a sender process
does not cause buffers to overflow at any of the functioning destination
processes", deferring details to reference [11] (Macêdo's PhD thesis).  The
thesis mechanism is window-based and keyed on message stability, which is
what is reproduced here:

* a sender may have at most ``window`` of its *own* messages per group that
  are not yet known to be stable (i.e. not yet known to have reached every
  member of the view);
* further application sends are queued locally and released, in order, as
  stability advances (the stability bound is driven by the ``m.ldn``
  piggyback of §5.1, so no extra messages are needed);
* null messages and membership traffic are never subject to flow control --
  they are precisely what keeps ``D`` (and therefore stability) advancing.

Because a receiver must retain every unstable message anyway (for
recovery), bounding the number of unstable messages per sender bounds every
receiver's buffer occupancy at ``window * |view|`` messages per group,
which is the no-overflow guarantee the paper claims.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.core.errors import FlowControlError


class FlowController:
    """Window-based flow control for one (process, group) pair."""

    def __init__(self, window: Optional[int], blocked_gauge=None) -> None:
        if window is not None and window < 1:
            raise ValueError("flow-control window must be >= 1 or None")
        self.window = window
        #: Clocks of own messages sent but not yet known stable.
        self._outstanding: set[int] = set()
        #: Application payloads waiting for window space.
        self._queued: Deque[object] = deque()
        self.total_queued = 0
        self.max_queue_length = 0
        #: Optional :class:`repro.obs.metrics.PushGauge` shared by every
        #: controller of a run; adjusted only at empty<->nonempty queue
        #: transitions, so it counts *senders currently blocked* (and
        #: remembers the peak) with zero per-message cost.
        self._blocked_gauge = blocked_gauge

    # ------------------------------------------------------------------
    # Send-side interface
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether flow control is active (a finite window is configured)."""
        return self.window is not None

    def can_send(self) -> bool:
        """Whether a new application message may be sent immediately."""
        if not self.enabled:
            return True
        return len(self._outstanding) < int(self.window)

    def queue(self, payload: object) -> None:
        """Park an application payload until window space is available."""
        self._queued.append(payload)
        self.total_queued += 1
        self.max_queue_length = max(self.max_queue_length, len(self._queued))
        if len(self._queued) == 1 and self._blocked_gauge is not None:
            self._blocked_gauge.adjust(1)

    def note_sent(self, clock: int) -> None:
        """Record that an own application message numbered ``clock`` left."""
        if self.enabled:
            self._outstanding.add(clock)

    # ------------------------------------------------------------------
    # Stability feedback
    # ------------------------------------------------------------------
    def note_stability(self, stability_bound: float) -> int:
        """Update the window from a new stability bound.

        Returns the number of queued payloads that may now be released (the
        caller pops them with :meth:`next_released`).
        """
        if not self.enabled:
            return 0
        self._outstanding = {clock for clock in self._outstanding if clock > stability_bound}
        releasable = 0
        available = int(self.window) - len(self._outstanding)
        if available > 0:
            releasable = min(available, len(self._queued))
        return releasable

    def next_released(self) -> object:
        """Pop the oldest queued payload (caller checked releasability)."""
        if not self._queued:
            raise FlowControlError("no queued payload to release")
        payload = self._queued.popleft()
        if not self._queued and self._blocked_gauge is not None:
            self._blocked_gauge.adjust(-1)
        return payload

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def outstanding_count(self) -> int:
        """Own messages currently counted against the window."""
        return len(self._outstanding)

    @property
    def queued_count(self) -> int:
        """Application payloads currently parked."""
        return len(self._queued)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowController(window={self.window}, outstanding={len(self._outstanding)}, "
            f"queued={len(self._queued)})"
        )
