"""Newtop protocol core: the paper's primary contribution.

This package implements the Newtop protocol suite of Ezhilchelvan, Macêdo
and Shrivastava (ICDCS 1995):

* single shared Lamport clock per process (:mod:`repro.core.clock`),
* symmetric and asymmetric (sequencer) total-order engines
  (:mod:`repro.core.symmetric`, :mod:`repro.core.asymmetric`),
* cross-group delivery conditions safe1'/safe2 (:mod:`repro.core.delivery`),
* time-silence liveness mechanism (:mod:`repro.core.time_silence`),
* message stability and retention (:mod:`repro.core.stability`),
* partitionable membership service (:mod:`repro.core.membership`,
  :mod:`repro.core.suspector`, :mod:`repro.core.views`),
* dynamic group formation (:mod:`repro.core.group_formation`),
* flow control (:mod:`repro.core.flow_control`),
* the process-level public API (:mod:`repro.core.process`).

Processes are wired into a running system by :class:`repro.api.Session`.
"""

from repro.core.clock import LamportClock
from repro.core.config import NewtopConfig, OrderingMode
from repro.core.delivery import DeliveryQueue
from repro.core.errors import (
    AlreadyMemberError,
    ConfigurationError,
    DeliveryOrderViolation,
    DepartedGroupError,
    FlowControlError,
    GroupFormationError,
    InvalidViewError,
    NewtopError,
    NotAMemberError,
    ProcessCrashedError,
)
from repro.core.group_formation import FormationHandle, FormationStatus
from repro.core.messages import DataMessage, SequencerRequest, Suspicion
from repro.core.process import DeliveredMessage, NewtopProcess
from repro.core.vectors import ReceiveVector, StabilityVector
from repro.core.views import MembershipView, Signature, SignatureView

__all__ = [
    "AlreadyMemberError",
    "ConfigurationError",
    "DataMessage",
    "DeliveredMessage",
    "DeliveryOrderViolation",
    "DeliveryQueue",
    "DepartedGroupError",
    "FlowControlError",
    "FormationHandle",
    "FormationStatus",
    "GroupFormationError",
    "InvalidViewError",
    "LamportClock",
    "MembershipView",
    "NewtopConfig",
    "NewtopError",
    "NewtopProcess",
    "NotAMemberError",
    "OrderingMode",
    "ProcessCrashedError",
    "ReceiveVector",
    "SequencerRequest",
    "Signature",
    "SignatureView",
    "StabilityVector",
    "Suspicion",
]
