"""The failure suspector ``S`` (§5.2).

Each group-view process ``GV_x,i`` has a failure suspector module ``S_i``
that monitors the liveliness of every other member of the current view:

    "If S_i observes that no multicast message has been received from Pj
    for a period Omega > omega (omega = the time-silence timeout duration)
    then it suspects the crash of Pj and notifies GV_i of its suspicion."

A notification has the form ``{Pk, ln}`` where ``ln`` is the number of the
last message received from ``Pk``.  In an asynchronous system suspicions
can be wrong -- that is the whole point of the refutation half of the
membership algorithm -- so the suspector is deliberately simple: a timeout
per member, checked periodically, plus a *forced* suspicion entry point
used by membership step (vii) (reciprocating a confirmed detection that
includes us).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set

from repro.core.messages import Suspicion
from repro.net.simulator import EventHandle, Simulator

#: Callback signature: the suspector notifies its GV with a Suspicion.
NotifyCallback = Callable[[Suspicion], None]


class FailureSuspector:
    """Timeout-based failure suspector for one (process, group) pair."""

    def __init__(
        self,
        sim: Simulator,
        own_id: str,
        members: Iterable[str],
        suspicion_timeout: float,
        check_interval: float,
        notify: NotifyCallback,
    ) -> None:
        if suspicion_timeout <= 0 or check_interval <= 0:
            raise ValueError("suspicion_timeout and check_interval must be positive")
        self.sim = sim
        self.own_id = own_id
        self.suspicion_timeout = suspicion_timeout
        self.check_interval = check_interval
        self._notify = notify
        self._last_heard: Dict[str, float] = {
            member: sim.now for member in members if member != own_id
        }
        self._last_clock: Dict[str, int] = {member: 0 for member in self._last_heard}
        self._already_suspected: Set[str] = set()
        self._active = False
        self._timer: Optional[EventHandle] = None
        self.suspicions_raised = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start periodic silence checks."""
        if self._active:
            return
        self._active = True
        now = self.sim.now
        for member in self._last_heard:
            self._last_heard[member] = now
        self._schedule_check()

    def stop(self) -> None:
        """Stop monitoring (crash, departure, teardown)."""
        self._active = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def active(self) -> bool:
        """Whether the suspector is currently running."""
        return self._active

    # ------------------------------------------------------------------
    # Inputs from the endpoint
    # ------------------------------------------------------------------
    def heard_from(self, member: str, clock: int) -> None:
        """Record activity from ``member`` carrying message number ``clock``.

        Any group traffic counts (data, null, membership), matching the
        paper's "no multicast message has been received from Pj".
        """
        if member == self.own_id or member not in self._last_heard:
            return
        self._last_heard[member] = self.sim.now
        if clock > self._last_clock.get(member, 0):
            self._last_clock[member] = clock

    def clear_suspicion(self, member: str) -> None:
        """A suspicion on ``member`` was refuted; allow re-suspecting later."""
        self._already_suspected.discard(member)
        if member in self._last_heard:
            self._last_heard[member] = self.sim.now

    def remove_member(self, member: str) -> None:
        """Stop monitoring ``member`` (it left the view)."""
        self._last_heard.pop(member, None)
        self._last_clock.pop(member, None)
        self._already_suspected.discard(member)

    def force_suspect(self, member: str) -> None:
        """Membership step (vii): unconditionally suspect ``member`` now."""
        if member == self.own_id or member not in self._last_heard:
            return
        self._raise_suspicion(member)

    def monitored_members(self) -> Set[str]:
        """Members currently being monitored."""
        return set(self._last_heard)

    def last_clock(self, member: str) -> int:
        """Number of the last message seen from ``member`` (0 if none)."""
        return self._last_clock.get(member, 0)

    def last_heard(self, member: str) -> Optional[float]:
        """Simulated time at which ``member`` was last heard from, or
        ``None`` if the member is not monitored."""
        return self._last_heard.get(member)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _schedule_check(self) -> None:
        if not self._active:
            return
        self._timer = self.sim.schedule(self.check_interval, self._on_check, label="suspector")

    def _on_check(self) -> None:
        if not self._active:
            return
        now = self.sim.now
        for member, last in list(self._last_heard.items()):
            if member in self._already_suspected:
                continue
            if now - last >= self.suspicion_timeout:
                self._raise_suspicion(member)
        self._schedule_check()

    def _raise_suspicion(self, member: str) -> None:
        if member in self._already_suspected:
            return
        self._already_suspected.add(member)
        self.suspicions_raised += 1
        self._notify(Suspicion(target=member, last_number=self._last_clock.get(member, 0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FailureSuspector(own={self.own_id!r}, monitored={sorted(self._last_heard)}, "
            f"suspected={sorted(self._already_suspected)})"
        )
