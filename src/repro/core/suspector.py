"""The failure suspector ``S`` (§5.2).

Each group-view process ``GV_x,i`` has a failure suspector module ``S_i``
that monitors the liveliness of every other member of the current view:

    "If S_i observes that no multicast message has been received from Pj
    for a period Omega > omega (omega = the time-silence timeout duration)
    then it suspects the crash of Pj and notifies GV_i of its suspicion."

A notification has the form ``{Pk, ln}`` where ``ln`` is the number of the
last message received from ``Pk``.  In an asynchronous system suspicions
can be wrong -- that is the whole point of the refutation half of the
membership algorithm -- so the suspector is deliberately simple: a timeout
per member, checked periodically, plus a *forced* suspicion entry point
used by membership step (vii) (reciprocating a confirmed detection that
includes us).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.core.messages import Suspicion
from repro.net.simulator import EventHandle, Simulator

#: Callback signature: the suspector notifies its GV with a Suspicion.
NotifyCallback = Callable[[Suspicion], None]


class FailureSuspector:
    """Timeout-based failure suspector for one (process, group) pair.

    Member state lives in parallel slab arrays (last-heard time, last
    clock, suspected flag) keyed by a dense per-member slot index rather
    than one dict entry per field per member: the periodic check -- the
    hottest loop at scale, every member of every group scanned every
    ``check_interval`` -- walks flat lists.  Departed members leave a
    tombstoned slot (``_monitored[slot] = False``); slots are never
    reused, matching crash-stop semantics.
    """

    def __init__(
        self,
        sim: Simulator,
        own_id: str,
        members: Iterable[str],
        suspicion_timeout: float,
        check_interval: float,
        notify: NotifyCallback,
        on_tick: Optional[Callable[[], None]] = None,
    ) -> None:
        if suspicion_timeout <= 0 or check_interval <= 0:
            raise ValueError("suspicion_timeout and check_interval must be positive")
        self.sim = sim
        self.own_id = own_id
        self.suspicion_timeout = suspicion_timeout
        self.check_interval = check_interval
        self._notify = notify
        #: Invoked at the end of every periodic check -- a convenient
        #: group-paced heartbeat for owners (the endpoint uses it to
        #: re-gossip long-unresolved suspicions).
        self._on_tick = on_tick
        # Slab state: pid -> slot, plus parallel arrays indexed by slot.
        self._slot: Dict[str, int] = {}
        self._pids: List[str] = []
        self._heard: List[float] = []
        #: Time of the last *actual* message from the member.  Unlike
        #: ``_heard`` it is never refreshed by :meth:`clear_suspicion`, so
        #: it answers "how long has this member truly been silent" across
        #: deferred/refuted suspicions.
        self._activity: List[float] = []
        self._clock: List[int] = []
        self._suspected: List[bool] = []
        self._monitored: List[bool] = []
        now = sim.now
        for member in members:
            if member == own_id or member in self._slot:
                continue
            self._slot[member] = len(self._pids)
            self._pids.append(member)
            self._heard.append(now)
            self._activity.append(now)
            self._clock.append(0)
            self._suspected.append(False)
            self._monitored.append(True)
        self._active = False
        self._timer: Optional[EventHandle] = None
        self.suspicions_raised = 0
        metrics = sim.metrics
        if metrics is not None:
            self._c_probes = metrics.counter("suspector.probes")
            self._c_suspicions = metrics.counter("suspector.suspicions")
            self._c_forced = metrics.counter("suspector.forced_suspicions")
        else:
            self._c_probes = None
            self._c_suspicions = None
            self._c_forced = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start periodic silence checks."""
        if self._active:
            return
        self._active = True
        now = self.sim.now
        for slot, monitored in enumerate(self._monitored):
            if monitored:
                self._heard[slot] = now
                self._activity[slot] = now
        self._schedule_check()

    def stop(self) -> None:
        """Stop monitoring (crash, departure, teardown)."""
        self._active = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def active(self) -> bool:
        """Whether the suspector is currently running."""
        return self._active

    # ------------------------------------------------------------------
    # Inputs from the endpoint
    # ------------------------------------------------------------------
    def heard_from(self, member: str, clock: int) -> None:
        """Record activity from ``member`` carrying message number ``clock``.

        Any group traffic counts (data, null, membership), matching the
        paper's "no multicast message has been received from Pj".
        """
        slot = self._slot.get(member)
        if slot is None or member == self.own_id or not self._monitored[slot]:
            return
        self._heard[slot] = self.sim.now
        self._activity[slot] = self.sim.now
        if clock > self._clock[slot]:
            self._clock[slot] = clock

    def clear_suspicion(self, member: str) -> None:
        """A suspicion on ``member`` was refuted; allow re-suspecting later."""
        slot = self._slot.get(member)
        if slot is None:
            return
        self._suspected[slot] = False
        if self._monitored[slot]:
            self._heard[slot] = self.sim.now

    def remove_member(self, member: str) -> None:
        """Stop monitoring ``member`` (it left the view)."""
        slot = self._slot.get(member)
        if slot is None:
            return
        self._monitored[slot] = False
        self._suspected[slot] = False

    def force_suspect(self, member: str) -> None:
        """Membership step (vii): unconditionally suspect ``member`` now."""
        slot = self._slot.get(member)
        if slot is None or member == self.own_id or not self._monitored[slot]:
            return
        if self._c_forced is not None and not self._suspected[slot]:
            self._c_forced.value += 1
        self._raise_suspicion(member)

    def monitored_members(self) -> Set[str]:
        """Members currently being monitored."""
        return {
            pid for pid, slot in self._slot.items() if self._monitored[slot]
        }

    def last_clock(self, member: str) -> int:
        """Number of the last message seen from ``member`` (0 if none)."""
        slot = self._slot.get(member)
        if slot is None or not self._monitored[slot]:
            return 0
        return self._clock[slot]

    def last_heard(self, member: str) -> Optional[float]:
        """Simulated time at which ``member`` was last heard from, or
        ``None`` if the member is not monitored."""
        slot = self._slot.get(member)
        if slot is None or not self._monitored[slot]:
            return None
        return self._heard[slot]

    def last_activity(self, member: str) -> Optional[float]:
        """Time of the last *actual* message from ``member`` (``None`` when
        not monitored).  Unlike :meth:`last_heard` this is not refreshed by
        :meth:`clear_suspicion`, so it measures true silence across
        deferred or refuted suspicions."""
        slot = self._slot.get(member)
        if slot is None or not self._monitored[slot]:
            return None
        return self._activity[slot]

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _schedule_check(self) -> None:
        if not self._active:
            return
        self._timer = self.sim.schedule(
            self.check_interval, self._on_check, label="suspector", wheel=True
        )

    def _on_check(self) -> None:
        if not self._active:
            return
        if self._c_probes is not None:
            self._c_probes.value += 1
        now = self.sim.now
        timeout = self.suspicion_timeout
        # Flat scan over the slabs; slot order equals the original member
        # order, so multi-suspicion ticks notify in the same sequence the
        # dict-backed implementation did.
        for slot in range(len(self._pids)):
            if not self._monitored[slot] or self._suspected[slot]:
                continue
            if now - self._heard[slot] >= timeout:
                self._raise_suspicion(self._pids[slot])
        if self._on_tick is not None:
            self._on_tick()
        self._schedule_check()

    def _raise_suspicion(self, member: str) -> None:
        slot = self._slot[member]
        if self._suspected[slot]:
            return
        self._suspected[slot] = True
        self.suspicions_raised += 1
        if self._c_suspicions is not None:
            self._c_suspicions.value += 1
        self._notify(Suspicion(target=member, last_number=self._clock[slot]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        monitored = sorted(self.monitored_members())
        suspected = sorted(
            pid for pid, slot in self._slot.items() if self._suspected[slot]
        )
        return (
            f"FailureSuspector(own={self.own_id!r}, monitored={monitored}, "
            f"suspected={suspected})"
        )
