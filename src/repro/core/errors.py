"""Exception hierarchy for the Newtop protocol implementation.

All protocol-level errors derive from :class:`NewtopError`, so callers can
catch a single base class.  Misuse of the public API (e.g. multicasting in a
group the process is not a member of) raises specific subclasses rather
than generic ``ValueError`` so that tests and applications can distinguish
programming errors from protocol conditions.
"""

from __future__ import annotations


class NewtopError(Exception):
    """Base class for every error raised by the Newtop implementation."""


class NotAMemberError(NewtopError):
    """An operation referred to a group the process is not a member of."""

    def __init__(self, process_id: str, group_id: str) -> None:
        super().__init__(f"process {process_id!r} is not a member of group {group_id!r}")
        self.process_id = process_id
        self.group_id = group_id


class AlreadyMemberError(NewtopError):
    """The process already has an endpoint for the given group."""

    def __init__(self, process_id: str, group_id: str) -> None:
        super().__init__(f"process {process_id!r} is already a member of group {group_id!r}")
        self.process_id = process_id
        self.group_id = group_id


class ProcessCrashedError(NewtopError):
    """An operation was attempted on a crashed process."""

    def __init__(self, process_id: str) -> None:
        super().__init__(f"process {process_id!r} has crashed")
        self.process_id = process_id


class DepartedGroupError(NewtopError):
    """An operation was attempted in a group the process has departed."""

    def __init__(self, process_id: str, group_id: str) -> None:
        super().__init__(f"process {process_id!r} has departed group {group_id!r}")
        self.process_id = process_id
        self.group_id = group_id


class InvalidViewError(NewtopError):
    """A view operation violated the paper's view-update rules.

    Newtop views only ever shrink ("a new view will always be a proper
    subset of the old view(s)"); attempting to install a view that adds
    members, or that does not contain the installing process, raises this.
    """


class GroupFormationError(NewtopError):
    """Group formation failed (vetoed, timed out, or misconfigured)."""


class FlowControlError(NewtopError):
    """A sender exceeded its flow-control budget with queueing disabled."""


class DeliveryOrderViolation(NewtopError):
    """Internal safety check failed: a delivery would break safe2.

    This is never expected to fire; it is an always-on internal assertion
    that turns a silent ordering bug into a loud failure.
    """


class ConfigurationError(NewtopError):
    """The supplied :class:`~repro.core.config.NewtopConfig` is invalid."""
