"""The time-silence mechanism (§4.1).

Delivery in the symmetric protocol is gated on ``D_x,i`` -- the minimum
message number received from every view member -- so a member that has
nothing to say would stall everybody else's deliveries.  The paper's
remedy:

    "Newtop provides each process with a simple mechanism, called the
    time-silence, that enables a process to remain lively by sending null
    messages during those periods it is not generating computational
    messages.  We assume that this mechanism for a given Pi prompts Pi to
    send a null message, if no (null or non-null) message was sent by Pi in
    the past interval of a fixed length, say, omega."

The mechanism operates *independently per group* (a process chatty in one
group may still be silent in another), and in the asymmetric protocol only
the sequencer needs to run it (§4.2).  Beyond liveness of delivery, the
paper notes the mechanism is also what makes crash detection possible at
all, so it keeps running even when only atomic delivery is required (§5).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.simulator import EventHandle, Simulator


class TimeSilence:
    """Per-(process, group) null-message timer.

    Parameters
    ----------
    sim:
        The simulation kernel (provides time and timers).
    omega:
        The silence threshold ω.
    send_null:
        Callback invoked when the process has been silent in the group for
        ω; expected to multicast a null message (which resets the timer via
        :meth:`notify_sent`).
    """

    def __init__(self, sim: Simulator, omega: float, send_null: Callable[[], None]) -> None:
        if omega <= 0:
            raise ValueError(f"omega must be positive (got {omega})")
        self.sim = sim
        self.omega = omega
        self._send_null = send_null
        self._last_send_time: float = sim.now
        self._active = False
        self._timer: Optional[EventHandle] = None
        self.nulls_sent = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin monitoring; the first null can fire ω from now."""
        if self._active:
            return
        self._active = True
        self._last_send_time = self.sim.now
        self._schedule_check(self.omega)

    def stop(self) -> None:
        """Stop monitoring (process crashed, departed the group, or the
        group endpoint is being torn down)."""
        self._active = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def active(self) -> bool:
        """Whether the mechanism is currently running."""
        return self._active

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def notify_sent(self) -> None:
        """Record that the process just sent a message (null or not) in the
        group; pushes the next null out by ω."""
        self._last_send_time = self.sim.now

    def _schedule_check(self, delay: float) -> None:
        if not self._active:
            return
        self._timer = self.sim.schedule(
            delay, self._on_timer, label="time-silence", wheel=True
        )

    #: Tolerance applied when comparing the silent interval against ω, so
    #: floating-point rounding of simulated timestamps cannot leave the
    #: timer re-arming itself with a vanishingly small delay forever.
    _EPSILON = 1e-9

    def _on_timer(self) -> None:
        if not self._active:
            return
        silent_for = self.sim.now - self._last_send_time
        if silent_for + self._EPSILON >= self.omega:
            self.nulls_sent += 1
            self._send_null()
            # The send_null callback goes through the normal send path, so
            # notify_sent() has been called and _last_send_time is now.
            self._schedule_check(self.omega)
        else:
            # Something was sent in the meantime; wake up when the current
            # silence would reach ω (never sooner than the tolerance, so the
            # timer always makes real progress).
            self._schedule_check(max(self.omega - silent_for, self._EPSILON * 10))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self._active else "stopped"
        return f"TimeSilence(omega={self.omega}, nulls_sent={self.nulls_sent}, {state})"
