"""Membership views.

A *view* is a process's current belief about which processes are
functioning, connected members of a group.  Newtop's views only ever shrink
("a new view will always be a proper subset of the old view(s)"); processes
that want to re-join their former co-members do so by forming a *new* group
(§3, §5.3), which is why there is no join operation here.

Two representations are provided:

* :class:`MembershipView` -- the plain representation used throughout §5: a
  set of member identifiers plus an installation index ``r`` (the paper's
  ``V^r_x,i``).
* :class:`SignatureView` -- the §6 extension adapted from Schiper &
  Ricciardi [19]: members are *signatures* ``{process-id, exclusion-count}``
  where the exclusion count is the total number of processes the holder has
  excluded from the initial view.  Two signature views of concurrent
  subgroups can never intersect, removing even the short-lived overlap of
  Example 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.core.errors import InvalidViewError


@dataclass(frozen=True)
class MembershipView:
    """An installed view ``V^r`` of one group at one process.

    Attributes
    ----------
    group:
        Group identifier.
    index:
        Installation index ``r``; the initial view has index 0 and each
        installation increments it by one.
    members:
        The processes believed to be functioning, connected members.
    """

    group: str
    index: int
    members: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InvalidViewError(f"view index must be non-negative (got {self.index})")
        if not self.members:
            raise InvalidViewError(f"view {self.group}@{self.index} has no members")

    # ------------------------------------------------------------------
    # Set-like behaviour
    # ------------------------------------------------------------------
    def __contains__(self, member: str) -> bool:
        return member in self.members

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.members))

    def __len__(self) -> int:
        return len(self.members)

    def sorted_members(self) -> Tuple[str, ...]:
        """Members in a deterministic (sorted) order.

        Used wherever the paper requires "a fixed pre-determined order"
        (the safe2 tie-break) or "a deterministic algorithm" (sequencer
        selection, §4.2).  Cached: views are immutable and this is called
        on every multicast fan-out.
        """
        cached = self.__dict__.get("_sorted_members")
        if cached is None:
            cached = tuple(sorted(self.members))
            object.__setattr__(self, "_sorted_members", cached)
        return cached

    def member_index(self) -> Dict[str, int]:
        """Dense ``pid -> index`` mapping over :meth:`sorted_members`.

        The view owns the canonical index space for slab/array-backed
        per-member state (receive/stability slabs, suspector slots): every
        member of the same view maps to the same dense index at every
        process.  Cached on the immutable view; do not mutate the result.
        """
        cached = self.__dict__.get("_member_index")
        if cached is None:
            cached = {pid: slot for slot, pid in enumerate(self.sorted_members())}
            object.__setattr__(self, "_member_index", cached)
        return cached

    def index_of(self, member: str) -> int:
        """Dense index of ``member`` in this view (KeyError if absent)."""
        return self.member_index()[member]

    # ------------------------------------------------------------------
    # View evolution
    # ------------------------------------------------------------------
    def exclude(self, departed: Iterable[str]) -> "MembershipView":
        """Install the successor view that excludes ``departed``.

        Raises :class:`InvalidViewError` if the result would be empty or if
        none of ``departed`` is actually in the view (installing an
        identical view would break the strictly-shrinking invariant).
        """
        departed_set = frozenset(departed)
        remaining = self.members - departed_set
        if remaining == self.members:
            raise InvalidViewError(
                f"view change for {self.group} excludes nobody: {sorted(departed_set)}"
            )
        if not remaining:
            raise InvalidViewError(
                f"view change for {self.group} would leave the view empty"
            )
        return MembershipView(group=self.group, index=self.index + 1, members=remaining)

    def sequencer(self) -> str:
        """The deterministic sequencer choice for asymmetric groups (§4.2).

        Processes with the same view are guaranteed to choose the same
        sequencer; the smallest member identifier is used.
        """
        return self.sorted_members()[0]

    @staticmethod
    def initial(group: str, members: Iterable[str]) -> "MembershipView":
        """The initial view ``V^0`` installed when a group is formed."""
        return MembershipView(group=group, index=0, members=frozenset(members))

    def describe(self) -> str:
        """Compact rendering used in traces and debug output."""
        return f"{self.group}@{self.index}{{{','.join(self.sorted_members())}}}"


@dataclass(frozen=True)
class Signature:
    """A member signature ``{process-id, exclusion-count}`` (§6)."""

    process: str
    exclusions: int

    def __post_init__(self) -> None:
        if self.exclusions < 0:
            raise InvalidViewError("exclusion count must be non-negative")


class SignatureView:
    """The §6 signature-based view representation.

    Wraps a :class:`MembershipView` with per-member exclusion counts.  When
    the holder installs a new view excluding ``k`` processes, the exclusion
    count of every *remaining* member signature increases by ``k``.  Two
    processes hold intersecting signature views only if they have excluded
    exactly the same number of processes, so views of concurrently evolving
    subgroups never intersect (the paper works through Example 3: after the
    partition the two-sided views are ``{{Pi,3},{Pj,3}}`` versus
    ``{{Pi,1},{Pj,1},{Pk,1},{Pl,1}}`` -- disjoint as signature sets).
    """

    def __init__(self, view: MembershipView, exclusions: int = 0) -> None:
        self._view = view
        self._exclusions = exclusions

    @property
    def view(self) -> MembershipView:
        """The underlying plain membership view."""
        return self._view

    @property
    def exclusions(self) -> int:
        """Total number of processes excluded from the initial view so far."""
        return self._exclusions

    def signatures(self) -> FrozenSet[Signature]:
        """The view as a set of member signatures."""
        return frozenset(
            Signature(process=member, exclusions=self._exclusions)
            for member in self._view.members
        )

    def exclude(self, departed: Iterable[str]) -> "SignatureView":
        """Install the successor signature view excluding ``departed``."""
        departed_set = frozenset(departed)
        new_view = self._view.exclude(departed_set)
        excluded_now = len(self._view.members & departed_set)
        return SignatureView(new_view, self._exclusions + excluded_now)

    def intersects(self, other: "SignatureView") -> bool:
        """Whether the two signature views share any member signature."""
        return bool(self.signatures() & other.signatures())

    @staticmethod
    def initial(group: str, members: Iterable[str]) -> "SignatureView":
        """Initial signature view: every member carries exclusion count 0."""
        return SignatureView(MembershipView.initial(group, members), 0)

    def describe(self) -> str:
        """Compact rendering used in traces and debug output."""
        inner = ", ".join(
            f"{{{signature.process},{signature.exclusions}}}"
            for signature in sorted(self.signatures(), key=lambda s: s.process)
        )
        return f"{self._view.group}@{self._view.index}[{inner}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SignatureView({self.describe()})"
