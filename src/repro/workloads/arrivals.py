"""Arrival processes: *when* the next application multicast happens.

An arrival process is the open-loop half of a workload profile: it emits an
unbounded stream of inter-arrival gaps (simulated-time units between
successive application sends), driven by a :class:`random.Random` the
caller supplies.  Everything is deterministic given that generator's seed,
so the same profile replayed against two different protocol stacks issues
byte-identical traffic at identical instants -- the precondition for any
per-stack load comparison.

Four shapes cover the regimes the paper's evaluation cares about:

* :class:`DeterministicArrivals` -- a metronome at exactly ``rate``
  arrivals per time unit (the closed-form baseline).
* :class:`PoissonArrivals` -- memoryless arrivals at mean ``rate``; the
  classic open-loop traffic model.
* :class:`BurstyArrivals` -- on/off traffic: ``burst_size`` back-to-back
  arrivals at ``peak_factor`` times the mean rate, then an idle window
  sized so the long-run mean is still ``rate``.  This is the regime where
  time-silence (null traffic) and flow control earn their keep.
* :class:`RampArrivals` -- a diurnal-style sinusoidal modulation of a
  Poisson process between ``(1 - amplitude)`` and ``(1 + amplitude)``
  times the mean rate over one ``period``.

All are frozen dataclasses: a process carries parameters only, never
generator state, so one profile object can parameterize many concurrent
clients.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, Type


class ArrivalProcess:
    """Base class: a parameterized stream of inter-arrival gaps."""

    #: Registry name (set by subclasses).
    kind: str = "arrivals"

    def gaps(self, rng: random.Random) -> Iterator[float]:
        """An unbounded iterator of inter-arrival gaps drawn from ``rng``."""
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Long-run arrivals per time unit (for load bookkeeping)."""
        raise NotImplementedError


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """Constant-rate arrivals: one every ``1 / rate`` time units."""

    rate: float = 1.0
    kind = "deterministic"

    def gaps(self, rng: random.Random) -> Iterator[float]:
        if self.rate <= 0:
            raise ValueError("arrival rate must be > 0")
        gap = 1.0 / self.rate
        while True:
            yield gap

    def mean_rate(self) -> float:
        return self.rate


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps with mean ``1 / rate``."""

    rate: float = 1.0
    kind = "poisson"

    def gaps(self, rng: random.Random) -> Iterator[float]:
        if self.rate <= 0:
            raise ValueError("arrival rate must be > 0")
        while True:
            yield rng.expovariate(self.rate)

    def mean_rate(self) -> float:
        return self.rate


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """On/off arrivals: bursts at ``peak_factor * rate``, then silence.

    Each cycle issues ``burst_size`` arrivals separated by
    ``1 / (peak_factor * rate)`` and then idles long enough that the
    long-run mean stays ``rate``; the idle window is jittered by +-20% so
    concurrent bursty senders do not lock-step.
    """

    rate: float = 1.0
    burst_size: int = 8
    peak_factor: float = 10.0
    kind = "bursty"

    def gaps(self, rng: random.Random) -> Iterator[float]:
        if self.rate <= 0 or self.burst_size < 1 or self.peak_factor <= 1.0:
            raise ValueError("bursty arrivals need rate > 0, burst_size >= 1, peak_factor > 1")
        intra_gap = 1.0 / (self.peak_factor * self.rate)
        cycle = self.burst_size / self.rate
        idle = cycle - self.burst_size * intra_gap
        while True:
            for _ in range(self.burst_size - 1):
                yield intra_gap
            yield intra_gap + idle * rng.uniform(0.8, 1.2)

    def mean_rate(self) -> float:
        return self.rate


@dataclass(frozen=True)
class RampArrivals(ArrivalProcess):
    """Diurnal ramp: Poisson arrivals whose instantaneous rate follows
    ``rate * (1 + amplitude * sin(2 * pi * t / period))``.

    ``t`` is the elapsed time since the generator started, so the ramp
    phase is a property of the client, not of wall-clock simulated time --
    two clients started at different instants each see a full cycle.
    """

    rate: float = 1.0
    period: float = 40.0
    amplitude: float = 0.8
    kind = "ramp"

    def gaps(self, rng: random.Random) -> Iterator[float]:
        if self.rate <= 0 or self.period <= 0 or not 0 <= self.amplitude < 1:
            raise ValueError("ramp arrivals need rate > 0, period > 0, 0 <= amplitude < 1")
        elapsed = 0.0
        while True:
            phase = math.sin(2.0 * math.pi * elapsed / self.period)
            instantaneous = self.rate * (1.0 + self.amplitude * phase)
            gap = rng.expovariate(max(instantaneous, 1e-9))
            elapsed += gap
            yield gap

    def mean_rate(self) -> float:
        return self.rate


#: Registry of arrival-process kinds (used by profile parsing and tests).
ARRIVAL_KINDS: Dict[str, Type[ArrivalProcess]] = {
    DeterministicArrivals.kind: DeterministicArrivals,
    PoissonArrivals.kind: PoissonArrivals,
    BurstyArrivals.kind: BurstyArrivals,
    RampArrivals.kind: RampArrivals,
}
