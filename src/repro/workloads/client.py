"""The open-loop traffic client: a reactive application inside sim time.

Unlike the legacy closed-loop generators (which pre-materialize a send
schedule), an :class:`OpenLoopClient` lives *inside* the simulation: each
arrival is one scheduled simulator event that draws the next
``(sender, group)`` from its profile's selection policy, attempts the
multicast through the session's stack, and schedules the next arrival from
the profile's arrival process.  Nothing is materialized up front, so the
client composes with ``analysis="online"`` runs of any size.

The client is **backpressure-aware**: it counts every attempt as *offered*
load and splits the outcome into *admitted* (the stack returned a message
id) versus *blocked* (the stack refused or deferred the send -- Newtop's
flow control, the send-blocking rule, or a policy stack such as
primary-partition halting a minority member).  Arrivals whose drawn sender
is crashed or no longer a group member are counted as *skipped* and issue
nothing, which keeps ``offered >= admitted`` exact.

It is also a :class:`~repro.net.trace.TraceSink`: registered on the
session's recorder (via :meth:`repro.api.Session.attach_client`), it
watches the delivery stream for its own admitted message ids and maintains
streaming latency statistics -- exact count/mean/min/max plus percentiles
over a bounded deterministic reservoir -- without retaining any trace
event.

Determinism: all arrival gaps and selection draws come from one private
``random.Random(seed)``, independent of protocol state, so the same client
configuration replayed on two different stacks offers byte-identical
traffic at identical instants (only the admitted/blocked split and the
delivery outcomes differ -- which is exactly what a per-stack load
comparison wants to measure).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.trace import DELIVER, TraceEvent, TraceSink
from repro.stats import (  # noqa: F401  (historical import site, re-exported)
    LATENCY_PERCENTILES,
    LATENCY_RESERVOIR,
    LatencyReservoir,
    percentile,
)
from repro.workloads.profiles import WorkloadProfile, get_profile


class OpenLoopClient(TraceSink):
    """Rate-driven traffic source bound to one :class:`~repro.api.Session`."""

    def __init__(
        self,
        profile: WorkloadProfile,
        senders: Sequence[str],
        groups: Sequence[str],
        *,
        seed: int = 0,
        start: float = 1.0,
        duration: float = 20.0,
        name: str = "client",
        record_issues: bool = False,
    ) -> None:
        if not senders or not groups:
            raise ValueError("an open-loop client needs senders and groups")
        if duration <= 0:
            raise ValueError("client duration must be > 0")
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.senders = list(senders)
        self.groups = list(groups)
        self.seed = seed
        self.start_time = start
        self.duration = duration
        self.name = name
        self._rng = random.Random(seed)
        self._gaps = self.profile.arrivals.gaps(self._rng)
        self._session = None
        self._sequence = 0
        # Offered-load accounting.
        self.offered = 0
        self.admitted = 0
        self.blocked = 0
        self.skipped = 0
        # Delivery accounting (fed by the trace stream).
        self.delivered_events = 0
        self._send_times: Dict[str, float] = {}
        self._delivered_ids: set = set()
        # Streaming latency stats: exact moments + mergeable reservoir.
        self.latency = LatencyReservoir(capacity=LATENCY_RESERVOIR, seed=seed)
        #: Optional issue log [(time, sender, group, payload_len)] for
        #: determinism tests; off by default to keep memory bounded.
        self.issued: Optional[List[Tuple[float, str, str, int]]] = (
            [] if record_issues else None
        )

    # ------------------------------------------------------------------
    # Session wiring
    # ------------------------------------------------------------------
    def bind(self, session) -> "OpenLoopClient":
        """Bind to a session and register on its trace recorder.

        Called by :meth:`repro.api.Session.attach_client`.
        """
        if self._session is not None:
            raise RuntimeError(f"client {self.name!r} is already bound to a session")
        self._session = session
        session.recorder.add_sink(self)
        return self

    def start(self) -> None:
        """Schedule the first arrival (call after :meth:`bind`)."""
        session = self._require_session()
        first = self.start_time + next(self._gaps)
        if first <= self.start_time + self.duration:
            session.sim.schedule_at(first, self._arrival, label=f"workload:{self.name}")

    # ------------------------------------------------------------------
    # The arrival loop
    # ------------------------------------------------------------------
    def _arrival(self) -> None:
        session = self._require_session()
        now = session.sim.now
        sender, group = self.profile.selection.choose(self._rng, self.senders, self.groups)
        payload = self._payload(sender, group)
        # Draw the next gap *before* any stack interaction so the arrival
        # sequence is identical on every stack.
        next_time = now + next(self._gaps)
        if self.issued is not None:
            self.issued.append((now, sender, group, len(payload)))
        stack = session.stack
        if stack.is_crashed(sender) or not stack.is_member(sender, group):
            self.skipped += 1
        else:
            self.offered += 1
            message_id = session.multicast(sender, group, payload)
            if message_id is not None:
                self.admitted += 1
                self._send_times[message_id] = now
            else:
                self.blocked += 1
        if next_time <= self.start_time + self.duration:
            session.sim.schedule_at(next_time, self._arrival, label=f"workload:{self.name}")

    def _payload(self, sender: str, group: str) -> str:
        header = f"{self.name}/{sender}/{group}/{self._sequence}"
        self._sequence += 1
        if len(header) >= self.profile.payload_bytes:
            return header
        return header + "." * (self.profile.payload_bytes - len(header))

    # ------------------------------------------------------------------
    # Trace-sink side: watch for our own deliveries
    # ------------------------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        if event.kind != DELIVER or event.message_id not in self._send_times:
            return
        self.delivered_events += 1
        self._delivered_ids.add(event.message_id)
        self.latency.add(event.time - self._send_times[event.message_id])

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def delivered_unique(self) -> int:
        """Distinct admitted messages delivered by at least one process."""
        return len(self._delivered_ids)

    @property
    def latency_count(self) -> int:
        """Exact number of latency samples observed."""
        return self.latency.count

    @property
    def latency_mean(self) -> float:
        """Exact running mean of the observed latencies."""
        return self.latency.mean

    @property
    def latency_min(self) -> float:
        return self.latency.min

    @property
    def latency_max(self) -> float:
        return self.latency.max

    @property
    def latency_samples(self) -> List[float]:
        """The bounded latency reservoir (for cross-client merging)."""
        return self.latency.samples

    def counters(self) -> Dict[str, int]:
        """The monotone counters, for phase-delta accounting."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "blocked": self.blocked,
            "skipped": self.skipped,
            "delivered_events": self.delivered_events,
            "delivered_unique": self.delivered_unique,
        }

    def latency_summary(self) -> Dict[str, Optional[float]]:
        """Streaming latency statistics over this client's deliveries."""
        return self.latency.summary()

    def stats(self) -> Dict[str, object]:
        """JSON-shaped snapshot: offered/admitted split plus latency."""
        return {
            "client": self.name,
            "profile": self.profile.describe(),
            **self.counters(),
            "latency": self.latency_summary(),
        }

    def _require_session(self):
        if self._session is None:
            raise RuntimeError(
                f"client {self.name!r} is not bound; call Session.attach_client first"
            )
        return self._session

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpenLoopClient(name={self.name!r}, profile={self.profile.name!r}, "
            f"offered={self.offered}, admitted={self.admitted})"
        )


def aggregate_counters(clients: Iterable[OpenLoopClient]) -> Dict[str, int]:
    """Sum the monotone counters of several clients (scenario reporting)."""
    total: Dict[str, int] = {
        "offered": 0, "admitted": 0, "blocked": 0, "skipped": 0,
        "delivered_events": 0, "delivered_unique": 0,
    }
    for client in clients:
        for key, value in client.counters().items():
            total[key] += value
    return total
