"""The open-loop traffic client: a reactive application inside sim time.

Unlike the legacy closed-loop generators (which pre-materialize a send
schedule), an :class:`OpenLoopClient` lives *inside* the simulation: each
arrival is one scheduled simulator event that draws the next
``(sender, group)`` from its profile's selection policy, attempts the
multicast through the session's stack, and schedules the next arrival from
the profile's arrival process.  Nothing is materialized up front, so the
client composes with ``analysis="online"`` runs of any size.

The client is **backpressure-aware**: it counts every attempt as *offered*
load and splits the outcome into *admitted* (the stack returned a message
id) versus *blocked* (the stack refused or deferred the send -- Newtop's
flow control, the send-blocking rule, or a policy stack such as
primary-partition halting a minority member).  Arrivals whose drawn sender
is crashed or no longer a group member are counted as *skipped* and issue
nothing, which keeps ``offered >= admitted`` exact.

It is also a :class:`~repro.net.trace.TraceSink`: registered on the
session's recorder (via :meth:`repro.api.Session.attach_client`), it
watches the delivery stream for its own admitted message ids and maintains
streaming latency statistics -- exact count/mean/min/max plus percentiles
over a bounded deterministic reservoir -- without retaining any trace
event.

Determinism: all arrival gaps and selection draws come from one private
``random.Random(seed)``, independent of protocol state, so the same client
configuration replayed on two different stacks offers byte-identical
traffic at identical instants (only the admitted/blocked split and the
delivery outcomes differ -- which is exactly what a per-stack load
comparison wants to measure).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.trace import DELIVER, TraceEvent, TraceSink
from repro.workloads.profiles import WorkloadProfile, get_profile

#: Bounded reservoir size for latency percentile estimation.
LATENCY_RESERVOIR = 4096

#: Percentiles reported by :meth:`OpenLoopClient.stats`.
LATENCY_PERCENTILES = (50, 90, 99)


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already sorted sample list."""
    if not sorted_samples:
        raise ValueError("no samples")
    rank = max(0, min(len(sorted_samples) - 1, int(round(q / 100.0 * len(sorted_samples))) - 1))
    return sorted_samples[rank]


def _systematic_ranks(pool: Sequence[float], target: int) -> List[float]:
    """``target`` values at evenly spaced ranks of ``pool`` (sorted).

    Works in both directions: shrinking keeps quantile-faithful
    representatives, stretching repeats ranks so the values act with
    proportionally more weight in a combined pool.
    """
    if target <= 0 or not pool:
        return []
    ordered = sorted(pool)
    step = len(ordered) / target
    return [
        ordered[min(len(ordered) - 1, int((index + 0.5) * step))]
        for index in range(target)
    ]


class LatencyReservoir:
    """Streaming latency statistics: exact moments + a mergeable reservoir.

    Count, mean, min and max are exact over every sample ever added.
    Percentiles come from a bounded reservoir: classic reservoir sampling
    (uniform over the stream) driven by a private seeded RNG, so the same
    sample stream always produces the same reservoir.

    Reservoirs *merge*: :meth:`merge` folds another reservoir in, keeping
    the exact moments exact and concatenating the sample pools.  A merged
    pool above capacity is compacted by sorting and taking systematically
    spaced ranks -- deterministic, order-preserving, and quantile-faithful
    (each retained sample represents an equal slice of the merged
    distribution).  That is what lets per-client, per-cell and per-shard
    statistics combine into one percentile table without shipping raw
    sample streams between processes -- e.g. across the
    :mod:`repro.parallel` worker pool.
    """

    def __init__(self, capacity: int = LATENCY_RESERVOIR, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be > 0")
        self.capacity = capacity
        self.count = 0
        self.mean = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: List[float] = []
        self._rng = random.Random(seed ^ 0x5EED)

    def add(self, sample: float) -> None:
        """Fold one sample into the exact moments and the reservoir."""
        self.count += 1
        self.mean += (sample - self.mean) / self.count
        self.min = min(self.min, sample)
        self.max = max(self.max, sample)
        if len(self._samples) < self.capacity:
            self._samples.append(sample)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = sample

    def merge(self, other: "LatencyReservoir") -> "LatencyReservoir":
        """Fold ``other`` into this reservoir (returns self for chaining).

        Exact moments combine exactly.  The sample pools combine
        *count-weighted*: when both sides are exact (every observed
        sample still in the pool) the union is kept verbatim, otherwise
        each side contributes systematically spaced ranks in proportion
        to its observation count -- so a three-point moment sketch
        standing for a million samples is not drowned out by (nor drowns
        out) a hundred-sample reservoir next to it.
        """
        if not other.count:
            return self
        if not self.count:
            self.count, self.mean = other.count, other.mean
            self.min, self.max = other.min, other.max
            self._samples = _systematic_ranks(
                other._samples, min(len(other._samples), self.capacity)
            )
            return self
        total = self.count + other.count
        exact = (
            self.count == len(self._samples)
            and other.count == len(other._samples)
            and total <= self.capacity
        )
        if exact:
            self._samples.extend(other._samples)
        else:
            own_share = min(
                self.capacity - 1, max(1, round(self.capacity * self.count / total))
            )
            self._samples = _systematic_ranks(self._samples, own_share) + \
                _systematic_ranks(other._samples, self.capacity - own_share)
        self.mean = (self.mean * self.count + other.mean * other.count) / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def samples(self) -> List[float]:
        """A copy of the current sample pool."""
        return list(self._samples)

    def summary(
        self, percentiles: Sequence[float] = LATENCY_PERCENTILES
    ) -> Dict[str, Optional[float]]:
        """JSON-shaped statistics: exact moments plus reservoir percentiles."""
        if not self.count:
            return {"count": 0, "mean": None, "min": None, "max": None,
                    **{f"p{q}": None for q in percentiles}}
        ordered = sorted(self._samples)
        summary: Dict[str, Optional[float]] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for q in percentiles:
            summary[f"p{q}"] = percentile(ordered, q)
        return summary

    @staticmethod
    def from_moments(count: int, mean: float, minimum: float,
                     maximum: float) -> "LatencyReservoir":
        """A reservoir reconstructed from exact moments alone.

        For folding in sources that kept no samples (e.g. a rolling
        metrics aggregate): the pool holds a three-point min/mean/max
        sketch at the exact count, so merged percentiles stay bounded by
        the true extremes even though the interior shape is coarse.
        """
        reservoir = LatencyReservoir()
        if count:
            reservoir.count = count
            reservoir.mean = mean
            reservoir.min = minimum
            reservoir.max = maximum
            reservoir._samples = [minimum, mean, maximum]
        return reservoir

    @staticmethod
    def merged(reservoirs: Iterable["LatencyReservoir"],
               capacity: int = LATENCY_RESERVOIR) -> "LatencyReservoir":
        """One reservoir combining ``reservoirs`` (which are not mutated)."""
        combined = LatencyReservoir(capacity=capacity)
        for reservoir in reservoirs:
            combined.merge(reservoir)
        return combined

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyReservoir(count={self.count}, "
            f"held={len(self._samples)}/{self.capacity})"
        )


class OpenLoopClient(TraceSink):
    """Rate-driven traffic source bound to one :class:`~repro.api.Session`."""

    def __init__(
        self,
        profile: WorkloadProfile,
        senders: Sequence[str],
        groups: Sequence[str],
        *,
        seed: int = 0,
        start: float = 1.0,
        duration: float = 20.0,
        name: str = "client",
        record_issues: bool = False,
    ) -> None:
        if not senders or not groups:
            raise ValueError("an open-loop client needs senders and groups")
        if duration <= 0:
            raise ValueError("client duration must be > 0")
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.senders = list(senders)
        self.groups = list(groups)
        self.seed = seed
        self.start_time = start
        self.duration = duration
        self.name = name
        self._rng = random.Random(seed)
        self._gaps = self.profile.arrivals.gaps(self._rng)
        self._session = None
        self._sequence = 0
        # Offered-load accounting.
        self.offered = 0
        self.admitted = 0
        self.blocked = 0
        self.skipped = 0
        # Delivery accounting (fed by the trace stream).
        self.delivered_events = 0
        self._send_times: Dict[str, float] = {}
        self._delivered_ids: set = set()
        # Streaming latency stats: exact moments + mergeable reservoir.
        self.latency = LatencyReservoir(capacity=LATENCY_RESERVOIR, seed=seed)
        #: Optional issue log [(time, sender, group, payload_len)] for
        #: determinism tests; off by default to keep memory bounded.
        self.issued: Optional[List[Tuple[float, str, str, int]]] = (
            [] if record_issues else None
        )

    # ------------------------------------------------------------------
    # Session wiring
    # ------------------------------------------------------------------
    def bind(self, session) -> "OpenLoopClient":
        """Bind to a session and register on its trace recorder.

        Called by :meth:`repro.api.Session.attach_client`.
        """
        if self._session is not None:
            raise RuntimeError(f"client {self.name!r} is already bound to a session")
        self._session = session
        session.recorder.add_sink(self)
        return self

    def start(self) -> None:
        """Schedule the first arrival (call after :meth:`bind`)."""
        session = self._require_session()
        first = self.start_time + next(self._gaps)
        if first <= self.start_time + self.duration:
            session.sim.schedule_at(first, self._arrival, label=f"workload:{self.name}")

    # ------------------------------------------------------------------
    # The arrival loop
    # ------------------------------------------------------------------
    def _arrival(self) -> None:
        session = self._require_session()
        now = session.sim.now
        sender, group = self.profile.selection.choose(self._rng, self.senders, self.groups)
        payload = self._payload(sender, group)
        # Draw the next gap *before* any stack interaction so the arrival
        # sequence is identical on every stack.
        next_time = now + next(self._gaps)
        if self.issued is not None:
            self.issued.append((now, sender, group, len(payload)))
        stack = session.stack
        if stack.is_crashed(sender) or not stack.is_member(sender, group):
            self.skipped += 1
        else:
            self.offered += 1
            message_id = session.multicast(sender, group, payload)
            if message_id is not None:
                self.admitted += 1
                self._send_times[message_id] = now
            else:
                self.blocked += 1
        if next_time <= self.start_time + self.duration:
            session.sim.schedule_at(next_time, self._arrival, label=f"workload:{self.name}")

    def _payload(self, sender: str, group: str) -> str:
        header = f"{self.name}/{sender}/{group}/{self._sequence}"
        self._sequence += 1
        if len(header) >= self.profile.payload_bytes:
            return header
        return header + "." * (self.profile.payload_bytes - len(header))

    # ------------------------------------------------------------------
    # Trace-sink side: watch for our own deliveries
    # ------------------------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        if event.kind != DELIVER or event.message_id not in self._send_times:
            return
        self.delivered_events += 1
        self._delivered_ids.add(event.message_id)
        self.latency.add(event.time - self._send_times[event.message_id])

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def delivered_unique(self) -> int:
        """Distinct admitted messages delivered by at least one process."""
        return len(self._delivered_ids)

    @property
    def latency_count(self) -> int:
        """Exact number of latency samples observed."""
        return self.latency.count

    @property
    def latency_mean(self) -> float:
        """Exact running mean of the observed latencies."""
        return self.latency.mean

    @property
    def latency_min(self) -> float:
        return self.latency.min

    @property
    def latency_max(self) -> float:
        return self.latency.max

    @property
    def latency_samples(self) -> List[float]:
        """The bounded latency reservoir (for cross-client merging)."""
        return self.latency.samples

    def counters(self) -> Dict[str, int]:
        """The monotone counters, for phase-delta accounting."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "blocked": self.blocked,
            "skipped": self.skipped,
            "delivered_events": self.delivered_events,
            "delivered_unique": self.delivered_unique,
        }

    def latency_summary(self) -> Dict[str, Optional[float]]:
        """Streaming latency statistics over this client's deliveries."""
        return self.latency.summary()

    def stats(self) -> Dict[str, object]:
        """JSON-shaped snapshot: offered/admitted split plus latency."""
        return {
            "client": self.name,
            "profile": self.profile.describe(),
            **self.counters(),
            "latency": self.latency_summary(),
        }

    def _require_session(self):
        if self._session is None:
            raise RuntimeError(
                f"client {self.name!r} is not bound; call Session.attach_client first"
            )
        return self._session

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpenLoopClient(name={self.name!r}, profile={self.profile.name!r}, "
            f"offered={self.offered}, admitted={self.admitted})"
        )


def aggregate_counters(clients: Iterable[OpenLoopClient]) -> Dict[str, int]:
    """Sum the monotone counters of several clients (scenario reporting)."""
    total: Dict[str, int] = {
        "offered": 0, "admitted": 0, "blocked": 0, "skipped": 0,
        "delivered_events": 0, "delivered_unique": 0,
    }
    for client in clients:
        for key, value in client.counters().items():
            total[key] += value
    return total
