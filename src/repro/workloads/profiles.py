"""Workload profiles: one named bundle of *when*, *who* and *how big*.

A :class:`WorkloadProfile` combines an arrival process, a selection policy
and a payload size into the unit the rest of the system passes around: the
open-loop client (:mod:`repro.workloads.client`) runs a profile reactively
inside simulation time, the scenario engine accepts a profile name in its
``workload`` spec, and the experiment sweep runner
(:mod:`repro.experiments`) grids profiles against stacks and offered
loads.

Named profiles (see :data:`PROFILE_FACTORIES`):

``uniform``
    Deterministic-rate arrivals, uniform sender/group selection.
``poisson``
    Poisson arrivals, uniform selection -- the default open-loop model.
``bursty``
    On/off bursts at 10x the mean rate, uniform selection.
``ramp``
    Diurnal sinusoidal ramp of a Poisson process, uniform selection.
``zipf``
    Poisson arrivals with Zipf-skewed senders.
``hot_group``
    Poisson arrivals with hot-group skew across the group list.

:func:`get_profile` resolves a name plus overrides (``rate``,
``payload_bytes`` and kind-specific options) into a fresh profile;
:func:`materialize` turns a profile into a fixed, sorted send schedule for
closed-loop callers (the legacy :mod:`repro.analysis.workloads` wrappers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    RampArrivals,
)
from repro.workloads.selection import (
    HotGroups,
    SelectionPolicy,
    UniformSelection,
    ZipfSenders,
)


@dataclass(frozen=True)
class WorkloadProfile:
    """A named open-loop traffic shape."""

    name: str
    arrivals: ArrivalProcess
    selection: SelectionPolicy = field(default_factory=UniformSelection)
    #: Application payload size; the client pads payloads to this length.
    payload_bytes: int = 64

    def offered_rate(self) -> float:
        """Long-run multicast attempts per simulated time unit."""
        return self.arrivals.mean_rate()

    def describe(self) -> Dict[str, object]:
        """JSON-shaped description for benchmark reports."""
        return {
            "name": self.name,
            "arrivals": self.arrivals.kind,
            "selection": self.selection.kind,
            "rate": self.offered_rate(),
            "payload_bytes": self.payload_bytes,
        }


#: name -> factory(rate, payload_bytes, **profile-specific options).
PROFILE_FACTORIES: Dict[str, Callable[..., WorkloadProfile]] = {}


def _register(name: str):
    def wrap(factory: Callable[..., WorkloadProfile]) -> Callable[..., WorkloadProfile]:
        PROFILE_FACTORIES[name] = factory
        return factory

    return wrap


@_register("uniform")
def _uniform(rate: float, payload_bytes: int) -> WorkloadProfile:
    return WorkloadProfile(
        "uniform", DeterministicArrivals(rate), UniformSelection(), payload_bytes
    )


@_register("poisson")
def _poisson(rate: float, payload_bytes: int) -> WorkloadProfile:
    return WorkloadProfile(
        "poisson", PoissonArrivals(rate), UniformSelection(), payload_bytes
    )


@_register("bursty")
def _bursty(
    rate: float, payload_bytes: int, burst_size: int = 8, peak_factor: float = 10.0
) -> WorkloadProfile:
    return WorkloadProfile(
        "bursty", BurstyArrivals(rate, burst_size, peak_factor), UniformSelection(), payload_bytes
    )


@_register("ramp")
def _ramp(
    rate: float, payload_bytes: int, period: float = 40.0, amplitude: float = 0.8
) -> WorkloadProfile:
    return WorkloadProfile(
        "ramp", RampArrivals(rate, period, amplitude), UniformSelection(), payload_bytes
    )


@_register("zipf")
def _zipf(rate: float, payload_bytes: int, exponent: float = 1.2) -> WorkloadProfile:
    return WorkloadProfile(
        "zipf", PoissonArrivals(rate), ZipfSenders(exponent), payload_bytes
    )


@_register("hot_group")
def _hot_group(
    rate: float, payload_bytes: int, hot_fraction: float = 0.25, hot_share: float = 0.8
) -> WorkloadProfile:
    return WorkloadProfile(
        "hot_group", PoissonArrivals(rate), HotGroups(hot_fraction, hot_share), payload_bytes
    )


def available_profiles() -> List[str]:
    """Names accepted by :func:`get_profile` (and scenario workload specs)."""
    return sorted(PROFILE_FACTORIES)


def get_profile(
    name: Union[str, WorkloadProfile],
    rate: float = 1.0,
    payload_bytes: int = 64,
    **options,
) -> WorkloadProfile:
    """Resolve a profile name (or pass a :class:`WorkloadProfile` through).

    ``rate`` is the *aggregate* offered load in multicast attempts per
    simulated time unit; kind-specific knobs (``burst_size``,
    ``exponent``, ``hot_share``, ...) ride in ``options``.  Unknown names
    and unknown options both raise ``ValueError`` so scenario specs fail
    loudly at parse time.
    """
    if isinstance(name, WorkloadProfile):
        return name
    factory = PROFILE_FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown workload profile {name!r}; expected one of {available_profiles()}"
        )
    try:
        return factory(rate, payload_bytes, **options)
    except TypeError:
        raise ValueError(
            f"profile {name!r} does not accept options {sorted(options)}"
        ) from None


@dataclass
class ScheduledSend:
    """One materialized application multicast (closed-loop compatibility)."""

    time: float
    process: str
    group: str
    payload: object


def materialize(
    profile: WorkloadProfile,
    senders: Sequence[str],
    groups: Sequence[str],
    *,
    start: float = 1.0,
    duration: float = 20.0,
    seed: int = 0,
    payload_factory: Optional[Callable[[str, str, int], object]] = None,
) -> List[ScheduledSend]:
    """Unroll a profile into a fixed, time-sorted send schedule.

    This is the bridge for closed-loop callers (the legacy
    :mod:`repro.analysis.workloads` generators): the same arrival and
    selection draws the open-loop client would make, pre-computed into a
    list.  Deterministic given ``seed``.
    """
    rng = random.Random(seed)
    gaps = profile.arrivals.gaps(rng)
    schedule: List[ScheduledSend] = []
    time = start + next(gaps)
    sequence = 0
    while time < start + duration:
        sender, group = profile.selection.choose(rng, senders, groups)
        if payload_factory is not None:
            payload = payload_factory(sender, group, sequence)
        else:
            payload = f"{sender}/{group}/{sequence}"
        schedule.append(ScheduledSend(time=time, process=sender, group=group, payload=payload))
        sequence += 1
        time += next(gaps)
    return schedule
