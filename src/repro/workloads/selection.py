"""Selection policies: *who* sends the next multicast, and *where*.

A selection policy maps each arrival to a ``(sender, group)`` pair, drawn
from the client's configured sender and group lists with the caller's
:class:`random.Random`.  Like the arrival processes, policies are frozen
parameter-only dataclasses and fully deterministic given the generator
seed.

* :class:`UniformSelection` -- every sender and every group equally likely
  (the paper's implicit workload shape).
* :class:`ZipfSenders` -- sender ``i`` (in list order) weighted
  ``1 / (i + 1) ** exponent``: a few hot senders dominate, the regime
  where a fixed sequencer is fine and all-ack protocols drown.
* :class:`HotGroups` -- a leading fraction of the group list receives a
  configurable share of the traffic (hot-group skew across overlapping
  groups).
"""

from __future__ import annotations

import bisect
import functools
import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Type


def _weighted_choice(rng: random.Random, cumulative: Sequence[float]) -> int:
    """Index drawn proportionally to the gaps of a cumulative weight list."""
    point = rng.random() * cumulative[-1]
    return min(bisect.bisect_right(cumulative, point), len(cumulative) - 1)


@functools.lru_cache(maxsize=128)
def _zipf_cumulative(exponent: float, count: int) -> Tuple[float, ...]:
    """Cumulative Zipf weights for ``count`` items (cached: the weights
    depend only on these two scalars, and selection runs per arrival)."""
    return tuple(
        itertools.accumulate(1.0 / (index + 1) ** exponent for index in range(count))
    )


class SelectionPolicy:
    """Base class: pick the ``(sender, group)`` for one arrival."""

    kind: str = "selection"

    def choose(
        self, rng: random.Random, senders: Sequence[str], groups: Sequence[str]
    ) -> Tuple[str, str]:
        raise NotImplementedError


@dataclass(frozen=True)
class UniformSelection(SelectionPolicy):
    """Uniformly random sender and group."""

    kind = "uniform"

    def choose(
        self, rng: random.Random, senders: Sequence[str], groups: Sequence[str]
    ) -> Tuple[str, str]:
        return senders[rng.randrange(len(senders))], groups[rng.randrange(len(groups))]


@dataclass(frozen=True)
class ZipfSenders(SelectionPolicy):
    """Zipf-skewed senders (list order = popularity order), uniform groups.

    ``exponent`` must be a finite float ``> 0``.  Useful values are
    roughly ``0.5``-``2.0``: below ``~0.5`` the skew is barely
    distinguishable from uniform, ``1.0``-``1.2`` matches classic
    web/KV-trace skew, and above ``~2.0`` nearly all traffic lands on the
    first item (the remaining items' weights vanish).  Item ``i`` (in
    list order) is drawn with weight ``1 / (i + 1) ** exponent``.
    """

    exponent: float = 1.2
    kind = "zipf"

    def __post_init__(self) -> None:
        if not math.isfinite(self.exponent) or self.exponent <= 0:
            raise ValueError(
                f"zipf exponent must be a finite float > 0, got {self.exponent!r}"
            )

    def choose(
        self, rng: random.Random, senders: Sequence[str], groups: Sequence[str]
    ) -> Tuple[str, str]:
        cumulative = _zipf_cumulative(self.exponent, len(senders))
        sender = senders[_weighted_choice(rng, cumulative)]
        return sender, groups[rng.randrange(len(groups))]


@dataclass(frozen=True)
class HotGroups(SelectionPolicy):
    """Uniform senders; the first ``hot_fraction`` of the group list
    receives ``hot_share`` of the traffic."""

    hot_fraction: float = 0.25
    hot_share: float = 0.8
    kind = "hot_group"

    def choose(
        self, rng: random.Random, senders: Sequence[str], groups: Sequence[str]
    ) -> Tuple[str, str]:
        if not 0 < self.hot_fraction <= 1 or not 0 <= self.hot_share <= 1:
            raise ValueError("hot_fraction must be in (0, 1], hot_share in [0, 1]")
        sender = senders[rng.randrange(len(senders))]
        hot_count = max(1, int(round(self.hot_fraction * len(groups))))
        if hot_count < len(groups) and rng.random() < self.hot_share:
            pool: Sequence[str] = groups[:hot_count]
        elif hot_count < len(groups):
            pool = groups[hot_count:]
        else:
            pool = groups
        return sender, pool[rng.randrange(len(pool))]


#: Registry of selection-policy kinds.
SELECTION_KINDS: Dict[str, Type[SelectionPolicy]] = {
    UniformSelection.kind: UniformSelection,
    ZipfSenders.kind: ZipfSenders,
    HotGroups.kind: HotGroups,
}
