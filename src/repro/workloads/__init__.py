"""repro.workloads: open-loop traffic generation inside simulation time.

The workload layer answers "what does the application offer the protocol?"
independently of any protocol: an :class:`~repro.workloads.arrivals.ArrivalProcess`
decides *when* the next multicast happens (deterministic rate, Poisson,
bursty on/off, diurnal ramp), a
:class:`~repro.workloads.selection.SelectionPolicy` decides *who sends
where* (uniform, Zipf-skewed senders, hot-group skew), and a
:class:`~repro.workloads.profiles.WorkloadProfile` bundles both with a
payload size under a registry name.

The :class:`~repro.workloads.client.OpenLoopClient` runs a profile
reactively on top of any :class:`repro.api.Session`: arrivals are
simulator events, sends go through the stack's public multicast, and the
client doubles as a trace sink that tracks its own deliveries -- so
offered vs admitted vs delivered load is measured per profile with no
materialized schedule and no stored trace, at any scale::

    from repro.api import Session
    from repro.workloads import OpenLoopClient, get_profile

    session = Session(stack="newtop", analysis="online", seed=7)
    session.spawn(["P1", "P2", "P3"])
    session.group("g")
    client = session.attach_client(
        OpenLoopClient(get_profile("poisson", rate=2.0),
                       senders=["P1", "P2"], groups=["g"], duration=30.0)
    )
    client.start()
    session.run(60)
    print(client.stats())       # offered/admitted/blocked + latency percentiles

Scenario specs reference profiles by name (``workload: {"profile":
"bursty", "rate": 2.0, "duration": 30}``) and the sweep runner in
:mod:`repro.experiments` grids them against stacks and offered loads.
"""

from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    RampArrivals,
)
from repro.workloads.client import (
    LATENCY_PERCENTILES,
    LATENCY_RESERVOIR,
    LatencyReservoir,
    OpenLoopClient,
    aggregate_counters,
)
from repro.workloads.profiles import (
    PROFILE_FACTORIES,
    ScheduledSend,
    WorkloadProfile,
    available_profiles,
    get_profile,
    materialize,
)
from repro.workloads.selection import (
    SELECTION_KINDS,
    HotGroups,
    SelectionPolicy,
    UniformSelection,
    ZipfSenders,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BurstyArrivals",
    "DeterministicArrivals",
    "HotGroups",
    "LATENCY_PERCENTILES",
    "LATENCY_RESERVOIR",
    "OpenLoopClient",
    "PROFILE_FACTORIES",
    "PoissonArrivals",
    "RampArrivals",
    "SELECTION_KINDS",
    "ScheduledSend",
    "SelectionPolicy",
    "UniformSelection",
    "WorkloadProfile",
    "ZipfSenders",
    "LatencyReservoir",
    "aggregate_counters",
    "available_profiles",
    "get_profile",
    "materialize",
]
