"""Per-message protocol-overhead models (§6 comparison).

One of the paper's central comparative claims is that Newtop's per-message
protocol information is *small and bounded*: a sender id, a group id, one
Lamport number and one stability hint -- independent of group size, of the
number of groups a process belongs to and of how groups overlap.  The
protocols it is compared against pay more:

* **ISIS CBCAST/ABCAST** [4] piggybacks a *vector clock* with one entry per
  group member -- and with overlapping groups, entries for every member of
  every overlapping group the sender belongs to;
* **Psync / Trans-style context graphs** [15, 17, 1, 12] piggyback the ids
  of the message's direct causal predecessors in the context graph;
* **causal piggybacking** (the alternative Newtop explicitly rejects for
  MD5', §3) appends every causally preceding *unstable message* to each
  multicast.

These functions compute the overhead in bytes under one consistent field
model (:mod:`repro.core.messages`), so the E7 benchmark can plot all four
on the same axis.  They are analytic models, but the Newtop and baseline
implementations also report their actually-transmitted bytes, and the E7
benchmark cross-checks the two.
"""

from __future__ import annotations

from typing import Optional

from repro.core.messages import MESSAGE_ID_BYTES, SCALAR_BYTES, TAG_BYTES


def newtop_overhead_bytes(
    group_size: int,
    groups_per_process: int = 1,
    asymmetric: bool = False,
) -> int:
    """Protocol bytes Newtop adds to one application multicast.

    Independent of both ``group_size`` and ``groups_per_process`` -- that is
    the point.  The parameters are accepted (and ignored) so benchmark
    sweeps can call every model uniformly.  Sequenced (asymmetric)
    multicasts carry one extra identifier (the sequencer) and the echoed
    request id.
    """
    overhead = 4 * SCALAR_BYTES + MESSAGE_ID_BYTES + TAG_BYTES
    if asymmetric:
        overhead += SCALAR_BYTES + MESSAGE_ID_BYTES
    return overhead


def isis_overhead_bytes(
    group_size: int,
    groups_per_process: int = 1,
    members_per_other_group: Optional[int] = None,
) -> int:
    """Protocol bytes an ISIS-style vector-clock multicast carries.

    The CBCAST vector timestamp has one entry per member of the sender's
    group; with overlapping groups the sender must ship timestamps covering
    every group it belongs to (one entry per distinct member).  ABCAST adds
    a sequencer field on top.
    """
    if members_per_other_group is None:
        members_per_other_group = group_size
    distinct_members = group_size + max(0, groups_per_process - 1) * max(
        0, members_per_other_group - 1
    )
    vector_bytes = distinct_members * SCALAR_BYTES
    base = 3 * SCALAR_BYTES + MESSAGE_ID_BYTES + TAG_BYTES
    return base + vector_bytes


def psync_overhead_bytes(
    group_size: int,
    groups_per_process: int = 1,
    average_predecessors: Optional[float] = None,
) -> int:
    """Protocol bytes a Psync-style context-graph multicast carries.

    Each message names its direct predecessors in the context graph.  With
    all members active, a new message typically has on the order of
    ``group_size - 1`` predecessors (the latest message from each other
    member); callers can override ``average_predecessors`` with a measured
    value.
    """
    if average_predecessors is None:
        average_predecessors = max(1.0, float(group_size - 1))
    predecessor_bytes = int(round(average_predecessors)) * MESSAGE_ID_BYTES
    base = 3 * SCALAR_BYTES + MESSAGE_ID_BYTES + TAG_BYTES
    return base + predecessor_bytes


def piggyback_overhead_bytes(
    group_size: int,
    unstable_messages: int,
    average_message_bytes: int = 64,
) -> int:
    """Protocol bytes when every multicast carries its causally preceding
    unstable messages (the mechanism Newtop rejects in §3).

    ``unstable_messages`` is the number of causally preceding messages not
    yet known stable at send time; each is shipped whole.
    """
    base = 3 * SCALAR_BYTES + MESSAGE_ID_BYTES + TAG_BYTES
    return base + unstable_messages * (average_message_bytes + MESSAGE_ID_BYTES)
