"""Online (streaming) checkers for the paper's guarantees.

The post-hoc checkers in :mod:`repro.analysis.checkers` are quadratic in
processes and messages: total order compares every process pair's delivery
sequences, and the causal checkers build an explicit transitive closure of
the happened-before relation.  That is fine at paper scale but is the
ceiling that kept the churn benchmark at 100 processes.  This module checks
the same predicates *incrementally*, consuming :class:`~repro.net.trace.TraceEvent`
objects as they are recorded (each checker is a
:class:`~repro.net.trace.TraceSink`), with amortized O(1)-O(k) work per
event where k is bounded by group size -- never by the process count or the
run length:

* :class:`OnlineTotalOrder` (MD4/MD4') -- a shared global-position arbiter
  assigns each message a position at its first delivery anywhere; every
  later delivery is validated against per-pair delivery watermarks
  (conflict detection), O(deliverers-of-message) per delivery instead of
  O(P^2) sequence comparisons at the end.
* :class:`OnlineCausalOrder` (MD5/MD5' and causal delivery consistency) --
  vector-clock summaries: each send is stamped with the sender's causal
  context, so a message's causal past is exactly the per-sender prefixes
  below its vector.  A per-(process, sender) frontier advances over those
  prefixes once, giving amortized O(1) work per causal predecessor instead
  of a transitive closure over all message pairs.
* :class:`OnlineSenderInView` (MD1) -- the live view timeline: the current
  view per (process, group) is updated on each install and each delivery is
  an O(1) membership test.
* :class:`OnlineVirtualSynchrony` (MD3/VC3) -- per-(process, group,
  view_index) delivery-set fingerprints (order-independent hash + count);
  processes that installed the same consecutive views must have equal
  fingerprints for the enclosed interval.
* :class:`OnlineViewAgreement` (VC1) -- per-(process, group) view
  sequences; installs are rare, so they are stored and compared at
  :meth:`result` time within the expected agreement sets, exactly like the
  post-hoc checker.

:class:`OnlineCheckSuite` bundles all five behind one sink, dispatching
each event kind only to the checkers that consume it.  Attach it to a
:class:`~repro.net.trace.TraceRecorder` (optionally with
``keep_events=False`` so the full trace is never materialized) and call
:meth:`~OnlineCheckSuite.result` at the end of the run; the verdict mirrors
:func:`repro.analysis.checkers.check_all`.

Equivalence with the post-hoc checkers: on any trace both suites agree on
the overall verdict (violations may be attributed to differently named
sub-checkers: e.g. a delivery from an already-excluded sender inverting a
causal pair is reported by the online suite under MD1 rather than under
the causal checker, because exclusion exempts it from MD5' by the paper's
own clause).  The equivalence and mutation-sensitivity tests in
``tests/test_online_checkers.py`` pin this down.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.checkers import CheckResult
from repro.net.trace import (
    CRASH,
    DELIVER,
    DEPART,
    SEND,
    TraceEvent,
    TraceSink,
    VIEW_INSTALL,
)


class OnlineChecker(TraceSink):
    """Base class: a trace sink that accumulates a :class:`CheckResult`.

    Subclasses set :attr:`name`, declare the event kinds they consume in
    :attr:`KINDS` (the suite uses it to skip dispatch), implement
    :meth:`on_event`, and either append to :attr:`violations` as violations
    are detected or override :meth:`result` for end-of-run evaluation.
    """

    name = "online"
    #: Event kinds this checker consumes; the suite dispatches only these.
    KINDS: FrozenSet[str] = frozenset()

    def __init__(self) -> None:
        self.violations: List[str] = []
        self.events_seen = 0

    def result(self) -> CheckResult:
        """The verdict over everything seen so far."""
        return CheckResult(self.name, not self.violations, list(self.violations))


class OnlineTotalOrder(OnlineChecker):
    """MD4/MD4': pairwise-consistent delivery order, checked per delivery.

    A shared arbiter assigns every message a global position the first time
    any process delivers it, defining the reference total order.  Conflict
    detection uses per-pair watermarks: ``watermark[(p, q)]`` holds the
    highest position *in q's local sequence* of any message both p and q
    have delivered (with the message id as witness).  When p delivers m
    that q delivered at local position j, a violation exists iff
    ``watermark[(p, q)] > j`` -- i.e. p previously delivered some m' that q
    delivered *after* m, so p orders m' before m while q orders m before
    m'.  Each delivery costs O(#processes that already delivered the same
    message) -- bounded by group size -- and the common case (delivery in
    arbiter order, first deliverer) is O(1).

    This checks the cross-group relation (MD4'), which subsumes the
    per-group one: a group's delivery sequence is a projection of the
    process's full sequence, so any per-group inversion is a full-sequence
    inversion.

    Like the post-hoc checker, the pairwise constraint is scoped by mutual
    view membership: a delivery at ``p`` constrains the pair ``(p, q)``
    only while ``p``'s view of the message's group still contains ``q``
    (and symmetrically).  Partitioned sides that have mutually excluded
    each other proceed independently (the paper's Example 3); deliveries
    without any installed view stay constrained.
    """

    name = "total_order"
    KINDS = frozenset({DELIVER, VIEW_INSTALL})

    def __init__(self) -> None:
        super().__init__()
        self._timeline = _ViewTimeline()
        #: The arbiter's output: message id -> global position in the
        #: reference delivery order (first-delivery rank).  Every process's
        #: delivery sequence must embed into this order on its common
        #: messages; exposed for observability and debugging.
        self.arbiter_position: Dict[str, int] = {}
        self._next_position = 0
        #: message id -> {process: (local delivery position, members of the
        #: process's view of the message's group at that delivery, or None)}
        self._deliverers: Dict[
            str, Dict[str, Tuple[int, Optional[FrozenSet[str]]]]
        ] = {}
        #: process -> number of deliveries so far (its local position counter)
        self._local_count: Dict[str, int] = {}
        #: (p, q) -> (max local position in q of a message delivered by both,
        #:            witness message id)
        self._watermark: Dict[Tuple[str, str], Tuple[int, str]] = {}

    def on_event(self, event: TraceEvent) -> None:
        if event.kind == VIEW_INSTALL:
            self._timeline.on_event(event)
            return
        if event.kind != DELIVER or event.message_id is None:
            return
        self.events_seen += 1
        process, message = event.process, event.message_id
        local_pos = self._local_count.get(process, 0)
        self._local_count[process] = local_pos + 1
        view: Optional[FrozenSet[str]] = None
        if event.group is not None:
            view = self._timeline.current.get((process, event.group))
        deliverers = self._deliverers.get(message)
        if deliverers is None:
            # First delivery anywhere: the arbiter assigns the global slot.
            self.arbiter_position[message] = self._next_position
            self._next_position += 1
            self._deliverers[message] = {process: (local_pos, view)}
            return
        for other, (other_pos, other_view) in deliverers.items():
            # Mutual-view scoping: this common message binds the pair only
            # if each side still saw the other in its view at delivery.
            if view is not None and other not in view:
                continue
            if other_view is not None and process not in other_view:
                continue
            mark = self._watermark.get((process, other))
            if mark is not None and mark[0] > other_pos:
                self.violations.append(
                    f"total order violated between {process} and {other}: "
                    f"{process} delivered {mark[1]} before {message}, "
                    f"{other} delivered {message} before {mark[1]} "
                    f"(arbiter order: {message}="
                    f"{self.arbiter_position.get(message)}, {mark[1]}="
                    f"{self.arbiter_position.get(mark[1])})"
                )
            # Update both directions' watermarks with this common message.
            if mark is None or other_pos > mark[0]:
                self._watermark[(process, other)] = (other_pos, message)
            reverse = self._watermark.get((other, process))
            if reverse is None or local_pos > reverse[0]:
                self._watermark[(other, process)] = (local_pos, message)
        deliverers[process] = (local_pos, view)


class _ViewTimeline:
    """Shared live-view bookkeeping: current members per (process, group)."""

    def __init__(self) -> None:
        self.current: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self.departed: Set[Tuple[str, str]] = set()

    def on_event(self, event: TraceEvent) -> None:
        if event.kind == VIEW_INSTALL and event.group is not None:
            self.current[(event.process, event.group)] = frozenset(
                event.detail("members", ())
            )
        elif event.kind == DEPART and event.group is not None:
            self.departed.add((event.process, event.group))


class OnlineSenderInView(OnlineChecker):
    """MD1: each delivery's sender is in the live view of the message's
    group at the delivering process -- an O(1) membership test against the
    view timeline maintained from install events."""

    name = "sender_in_view"
    KINDS = frozenset({DELIVER, VIEW_INSTALL})

    def __init__(self) -> None:
        super().__init__()
        self._timeline = _ViewTimeline()

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        if event.kind == VIEW_INSTALL:
            self._timeline.on_event(event)
            return
        if event.group is None:
            return
        members = self._timeline.current.get((event.process, event.group))
        # No view installed yet: same exemption as the post-hoc checker
        # (deliveries before the first install are not constrained).
        if members is not None and event.sender not in members:
            self.violations.append(
                f"{event.process} delivered {event.message_id} from "
                f"{event.sender} outside its view {sorted(members)} of "
                f"{event.group}"
            )


class OnlineCausalOrder(OnlineChecker):
    """MD5/MD5' and causal delivery consistency, via vector clocks.

    Every send is stamped with the sender's causal context (a sparse vector
    of per-sender send counts): sender s's n-th message m has
    ``vector[s] == n`` and ``vector[x] == k`` for every other sender x with
    k messages in m's causal past.  Because a sender's own messages are
    totally ordered by its send sequence, m's causal past is *exactly* the
    union of per-sender prefixes below its vector -- no transitive closure
    needed.

    On delivery of m at p, a per-(p, sender) frontier advances over each
    newly covered prefix index once: each predecessor must already be
    delivered at p, or be exempt because p currently has no view of the
    predecessor's group, has departed it, or has excluded the predecessor's
    sender from it (MD5''s own clause; views only shrink, so the exemption
    is permanent -- a later delivery of such a message is an MD1 violation
    and is reported there).  Total work is one visit per (process,
    causal-predecessor) pair: amortized O(1) per delivered predecessor.

    The advance-once frontier relies on exemptions being permanent.  The
    "no view yet" exemption is safe even with dynamic group formation
    (§5.3): a formed group's members install the initial view *before*
    multicasting their start-group message, and every member may send
    application traffic only after collecting start-group from its whole
    view -- so no message of the group can causally precede any member's
    install, and a process that never joins keeps no view forever.
    Hand-mutated event streams that violate this protocol invariant may
    trade a causal report for an MD1 one, but never a FAIL for a PASS of
    the suite as a whole.
    """

    name = "causal_prefix"
    KINDS = frozenset({SEND, DELIVER, VIEW_INSTALL, DEPART})

    def __init__(self) -> None:
        super().__init__()
        self._timeline = _ViewTimeline()
        #: sender -> number of sends so far
        self._send_count: Dict[str, int] = {}
        #: (sender, index) -> (message id, group)
        self._sent_at: Dict[Tuple[str, int], Tuple[str, Optional[str]]] = {}
        #: message id -> its vector summary
        self._vector: Dict[str, Dict[str, int]] = {}
        #: process -> causal context vector
        self._context: Dict[str, Dict[str, int]] = {}
        #: process -> delivered message ids
        self._delivered: Dict[str, Set[str]] = {}
        #: (process, sender) -> verified prefix length
        self._frontier: Dict[Tuple[str, str], int] = {}

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        if event.kind in (VIEW_INSTALL, DEPART):
            self._timeline.on_event(event)
            return
        if event.message_id is None:
            return
        if event.kind == SEND:
            self._on_send(event)
        else:
            self._on_deliver(event)

    def _on_send(self, event: TraceEvent) -> None:
        sender = event.process
        index = self._send_count.get(sender, 0) + 1
        self._send_count[sender] = index
        context = self._context.setdefault(sender, {})
        context[sender] = index
        if event.message_id in self._vector:
            # Re-send under the original id (asymmetric failover): the
            # message's causal past is fixed by its first send.
            return
        self._vector[event.message_id] = dict(context)
        self._sent_at[(sender, index)] = (event.message_id, event.group)

    def _exempt(self, process: str, group: Optional[str], sender: str) -> bool:
        if group is None:
            return False
        if (process, group) in self._timeline.departed:
            return True
        members = self._timeline.current.get((process, group))
        return members is None or sender not in members

    def _on_deliver(self, event: TraceEvent) -> None:
        process, message = event.process, event.message_id
        delivered = self._delivered.setdefault(process, set())
        delivered.add(message)
        vector = self._vector.get(message)
        if vector is None:
            return  # Delivery without a recorded send: nothing to infer.
        context = self._context.setdefault(process, {})
        for sender, count in vector.items():
            if context.get(sender, 0) < count:
                context[sender] = count
            frontier = self._frontier.get((process, sender), 0)
            if frontier >= count:
                continue
            for index in range(frontier + 1, count + 1):
                sent = self._sent_at.get((sender, index))
                if sent is None:
                    continue
                predecessor, predecessor_group = sent
                if predecessor in delivered:
                    continue
                if self._exempt(process, predecessor_group, sender):
                    continue
                self.violations.append(
                    f"{process} delivered {message} without causally "
                    f"preceding {predecessor} whose sender {sender} is "
                    f"still in its view of {predecessor_group}"
                )
            self._frontier[(process, sender)] = count


class OnlineVirtualSynchrony(OnlineChecker):
    """MD3/VC3: per-(process, group, view_index) delivery-set fingerprints.

    Deliveries accumulate into an order-independent fingerprint (XOR and
    sum of message-id hashes, plus a count) keyed by the ``view_index``
    the protocol stamped on the delivery; view installs append to the
    process's per-group view sequence.  At :meth:`result` time, processes
    (crashed ones exempt, as in the paper) that installed the same view at
    the same position *and* the same successor view must have identical
    fingerprints for the enclosed interval.  Per event this is O(1); memory
    is O(views), not O(deliveries).

    ``view_agreement_sets`` scopes the comparison per group exactly like
    the post-hoc :func:`~repro.analysis.checkers.check_all` does: groups
    named in the mapping compare only the listed processes (the scenario's
    stable core -- e.g. drop-window targets are excluded because lost
    messages may never trigger suspicion); unnamed groups fall back to
    every process seen for the group.
    """

    name = "same_view_delivery_sets"
    KINDS = frozenset({DELIVER, VIEW_INSTALL, CRASH})

    def __init__(
        self, view_agreement_sets: Optional[Dict[str, Iterable[str]]] = None
    ) -> None:
        super().__init__()
        self.view_agreement_sets = view_agreement_sets
        #: (process, group) -> installed view compositions, in order
        self._installs: Dict[Tuple[str, str], List[FrozenSet[str]]] = {}
        #: (process, group) -> view_index -> (xor, sum, count)
        self._fingerprints: Dict[
            Tuple[str, str], Dict[int, Tuple[int, int, int]]
        ] = {}
        self._crashed: Set[str] = set()

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        if event.kind == CRASH:
            self._crashed.add(event.process)
            return
        if event.group is None:
            return
        key = (event.process, event.group)
        if event.kind == VIEW_INSTALL:
            self._installs.setdefault(key, []).append(
                frozenset(event.detail("members", ()))
            )
            return
        view_index = event.detail("view_index")
        if view_index is None or event.message_id is None:
            return
        digest = hash(event.message_id)
        buckets = self._fingerprints.setdefault(key, {})
        xor, total, count = buckets.get(int(view_index), (0, 0, 0))
        buckets[int(view_index)] = (xor ^ digest, total + digest, count + 1)

    def _in_scope(self, process: str, group: str) -> bool:
        """Mirror check_all's scoping: listed groups compare only their
        agreement set; unlisted groups compare everyone."""
        if self.view_agreement_sets is None:
            return True
        expected = self.view_agreement_sets.get(group)
        return expected is None or process in set(expected)

    def result(self) -> CheckResult:
        violations = list(self.violations)
        # Group closed intervals by (group, position, view, successor view):
        # everyone in a bucket agreed on both installs, so their interval
        # fingerprints must match (the premise of MD3).
        buckets: Dict[
            Tuple[str, int, FrozenSet[str], FrozenSet[str]],
            List[Tuple[str, Tuple[int, int, int]]],
        ] = {}
        for (process, group), views in self._installs.items():
            if process in self._crashed or not self._in_scope(process, group):
                continue
            fingerprints = self._fingerprints.get((process, group), {})
            for position in range(len(views) - 1):
                key = (group, position, views[position], views[position + 1])
                buckets.setdefault(key, []).append(
                    (process, fingerprints.get(position, (0, 0, 0)))
                )
        for (group, position, _view, _next_view), members in buckets.items():
            reference_process, reference = members[0]
            for process, fingerprint in members[1:]:
                if fingerprint != reference:
                    violations.append(
                        f"virtual synchrony violated in {group} view "
                        f"{position}: {reference_process} and {process} "
                        f"delivered different message sets "
                        f"(counts {reference[2]} vs {fingerprint[2]})"
                    )
        return CheckResult(self.name, not violations, violations)


class OnlineViewAgreement(OnlineChecker):
    """VC1: processes expected to agree install identical view sequences.

    View installs are rare (O(membership changes), never O(messages)), so
    the sequences are simply stored per (process, group) and compared at
    :meth:`result` time within the expected agreement sets -- the same
    scoping as the post-hoc checker (only the scenario's stable core must
    agree after partitions; crashed processes are exempt).
    """

    name = "view_sequences"
    KINDS = frozenset({VIEW_INSTALL, CRASH})

    def __init__(
        self, view_agreement_sets: Optional[Dict[str, Iterable[str]]] = None
    ) -> None:
        super().__init__()
        self.view_agreement_sets = view_agreement_sets
        self._sequences: Dict[Tuple[str, str], List[FrozenSet[str]]] = {}
        self._groups: Set[str] = set()
        self._crashed: Set[str] = set()

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        if event.kind == CRASH:
            self._crashed.add(event.process)
            return
        if event.group is None:
            return
        self._groups.add(event.group)
        self._sequences.setdefault((event.process, event.group), []).append(
            frozenset(event.detail("members", ()))
        )

    def result(self) -> CheckResult:
        violations = list(self.violations)
        for group in sorted(self._groups):
            expected = (
                self.view_agreement_sets.get(group)
                if self.view_agreement_sets is not None
                else None
            )
            if expected is not None:
                candidates = [
                    process
                    for process in expected
                    if process not in self._crashed
                ]
            else:
                # No agreement set for this group: fall back to every
                # process that installed a view of it, exactly like the
                # post-hoc checker (appropriate for partition-free groups).
                candidates = sorted(
                    process
                    for (process, seq_group) in self._sequences
                    if seq_group == group and process not in self._crashed
                )
            if len(candidates) < 2:
                continue
            reference_process = candidates[0]
            reference = self._sequences.get((reference_process, group), [])
            for process in candidates[1:]:
                sequence = self._sequences.get((process, group), [])
                if sequence != reference:
                    violations.append(
                        f"view sequences differ for {group}: "
                        f"{reference_process}={[sorted(v) for v in reference]} "
                        f"vs {process}={[sorted(v) for v in sequence]}"
                    )
        return CheckResult(self.name, not violations, violations)


#: Checker-name -> factory; the names are what protocol stacks declare as
#: the checks their guarantees claim (``ProtocolStack.checks``).
CHECKER_FACTORIES = {
    "total_order": lambda sets: OnlineTotalOrder(),
    "sender_in_view": lambda sets: OnlineSenderInView(),
    "causal_prefix": lambda sets: OnlineCausalOrder(),
    "view_sequences": lambda sets: OnlineViewAgreement(sets),
    "same_view_delivery_sets": lambda sets: OnlineVirtualSynchrony(sets),
}

#: Every checker, in dispatch order -- the default (Newtop) selection.
ALL_CHECKS: Tuple[str, ...] = (
    "total_order",
    "sender_in_view",
    "causal_prefix",
    "view_sequences",
    "same_view_delivery_sets",
)


class OnlineCheckSuite(TraceSink):
    """All streaming checkers behind a single trace sink.

    Construct (optionally with the per-group view agreement sets, as for
    :func:`repro.analysis.checkers.check_all`), register on a
    :class:`~repro.net.trace.TraceRecorder` -- typically one created with
    ``keep_events=False`` so nothing is materialized -- and read
    :meth:`result` once the run settles.  Events are dispatched only to the
    checkers whose :attr:`~OnlineChecker.KINDS` include their kind, so the
    dominant null-message traffic costs one dictionary lookup each.

    ``checks`` selects a subset of checkers by name (see
    :data:`CHECKER_FACTORIES`): protocol stacks whose guarantees are weaker
    than Newtop's (e.g. a fixed sequencer claims total order but not causal
    prefixes across groups) verify exactly the properties they claim.
    """

    def __init__(
        self,
        view_agreement_sets: Optional[Dict[str, Iterable[str]]] = None,
        checks: Optional[Iterable[str]] = None,
    ) -> None:
        self.check_names: Tuple[str, ...] = (
            ALL_CHECKS if checks is None else tuple(checks)
        )
        unknown = [name for name in self.check_names if name not in CHECKER_FACTORIES]
        if unknown:
            raise ValueError(
                f"unknown check names {unknown}; expected a subset of {ALL_CHECKS}"
            )
        built = {
            name: CHECKER_FACTORIES[name](view_agreement_sets)
            for name in self.check_names
        }
        # Named attributes for the historical (full-suite) spelling.
        self.total_order = built.get("total_order")
        self.sender_in_view = built.get("sender_in_view")
        self.causal_order = built.get("causal_prefix")
        self.view_agreement = built.get("view_sequences")
        self.virtual_synchrony = built.get("same_view_delivery_sets")
        self.checkers: Tuple[OnlineChecker, ...] = tuple(
            built[name] for name in self.check_names
        )
        if not self.checkers:
            raise ValueError("an OnlineCheckSuite needs at least one check")
        self._dispatch: Dict[str, List[OnlineChecker]] = {}
        for checker in self.checkers:
            for kind in checker.KINDS:
                self._dispatch.setdefault(kind, []).append(checker)
        self.events_seen = 0

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        for checker in self._dispatch.get(event.kind, ()):
            checker.on_event(event)

    def result(self) -> CheckResult:
        """Merge every checker's verdict (AND of passes)."""
        merged: Optional[CheckResult] = None
        for checker in self.checkers:
            verdict = checker.result()
            merged = verdict if merged is None else merged.merge(verdict)
        assert merged is not None
        return merged


class GroupScopedCheckSuite(TraceSink):
    """Streaming checks evaluated independently per group.

    Single-group protocols (the :mod:`repro.baselines`) lifted to many
    overlapping groups run one independent protocol instance per group, so
    their guarantees -- total order, causal order -- hold *within* each
    group but say nothing across groups (exactly the weakness §6 of the
    paper attributes to them).  This sink dispatches each event to an
    :class:`OnlineCheckSuite` dedicated to the event's group, scoping every
    selected check to one group's event stream; group-less events (crashes)
    fan out to every group's suite, including ones created later.

    Only crash events are buffered for that late replay: crashes are
    bounded by the process count, so the suite keeps the online mode's
    flat-memory property (no event stream is ever materialized).
    """

    def __init__(
        self,
        view_agreement_sets: Optional[Dict[str, Iterable[str]]] = None,
        checks: Optional[Iterable[str]] = None,
    ) -> None:
        self.check_names: Tuple[str, ...] = (
            ALL_CHECKS if checks is None else tuple(checks)
        )
        self.view_agreement_sets = view_agreement_sets
        self._suites: Dict[str, OnlineCheckSuite] = {}
        self._crash_events: List[TraceEvent] = []
        self.events_seen = 0

    def _suite_for(self, group: str) -> OnlineCheckSuite:
        suite = self._suites.get(group)
        if suite is None:
            sets = None
            if self.view_agreement_sets is not None and group in self.view_agreement_sets:
                sets = {group: self.view_agreement_sets[group]}
            suite = OnlineCheckSuite(view_agreement_sets=sets, checks=self.check_names)
            # A crash is visible to every group the process belongs to, so
            # late-created suites must see the ones recorded before them.
            for event in self._crash_events:
                suite.on_event(event)
            self._suites[group] = suite
        return suite

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        if event.group is None:
            if event.kind == CRASH:
                self._crash_events.append(event)
            for suite in self._suites.values():
                suite.on_event(event)
            return
        self._suite_for(event.group).on_event(event)

    def result(self) -> CheckResult:
        """AND of every group's verdict (PASS when no group was exercised)."""
        merged: Optional[CheckResult] = None
        for group in sorted(self._suites):
            verdict = self._suites[group].result()
            merged = verdict if merged is None else merged.merge(verdict)
        if merged is None:
            return CheckResult("per_group(" + ",".join(self.check_names) + ")", True, [])
        return merged


def check_events(
    events: Iterable[TraceEvent],
    view_agreement_sets: Optional[Dict[str, Iterable[str]]] = None,
    checks: Optional[Iterable[str]] = None,
    scope: str = "global",
) -> CheckResult:
    """Replay an event stream through a fresh suite and return the verdict.

    Events are fed in ``(time, seq)`` order -- the order the recorder
    produced them -- so a stored/parsed trace checks identically to a live
    run.  ``checks`` and ``scope`` mirror the per-stack selection of
    :class:`OnlineCheckSuite` / :class:`GroupScopedCheckSuite`.
    """
    if scope == "group":
        suite: TraceSink = GroupScopedCheckSuite(view_agreement_sets, checks=checks)
    else:
        suite = OnlineCheckSuite(view_agreement_sets, checks=checks)
    for event in sorted(events, key=lambda event: (event.time, event.seq)):
        suite.on_event(event)
    return suite.result()
