"""Latency, throughput and message-cost metrics derived from traces.

The paper reports no absolute performance numbers, so the benchmark harness
reports *relative* and *structural* quantities: delivery latency in
simulated time units, protocol messages per delivered application
multicast, null-message ratios, blocking time, view-agreement latency.
This module turns raw traces and network statistics into those summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.net.network import NetworkStats
from repro.net.trace import (
    BLOCKED_SEND,
    DELIVER,
    EventTrace,
    NULL_SEND,
    SEND,
    SUSPECT,
    UNBLOCKED_SEND,
    VIEW_INSTALL,
)


@dataclass
class LatencySummary:
    """Summary statistics of a latency sample."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float
    minimum: float

    @staticmethod
    def empty() -> "LatencySummary":
        """Summary of an empty sample (all statistics zero)."""
        return LatencySummary(count=0, mean=0.0, median=0.0, p95=0.0, maximum=0.0, minimum=0.0)


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(math.ceil(fraction * len(ordered))) - 1))
    return ordered[index]


def summarize_latencies(samples: Iterable[float]) -> LatencySummary:
    """Compute count/mean/median/p95/min/max of a latency sample."""
    ordered = sorted(samples)
    if not ordered:
        return LatencySummary.empty()
    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        median=_percentile(ordered, 0.5),
        p95=_percentile(ordered, 0.95),
        maximum=ordered[-1],
        minimum=ordered[0],
    )


@dataclass
class MetricsReport:
    """A bundle of protocol metrics for one simulation run."""

    #: Delivery latency (send -> each delivery) summary.
    delivery_latency: LatencySummary
    #: Application multicasts sent.
    application_sends: int
    #: Application deliveries (across all processes).
    application_deliveries: int
    #: Null messages sent by the time-silence mechanism.
    null_messages: int
    #: Deferred (blocked) sends and how long they waited.
    blocked_sends: int
    #: Network-level counters.
    network: Dict[str, int] = field(default_factory=dict)
    #: Simulated duration covered by the report.
    duration: float = 0.0

    @property
    def null_ratio(self) -> float:
        """Null messages per application send (time-silence overhead)."""
        if self.application_sends == 0:
            return float(self.null_messages)
        return self.null_messages / self.application_sends

    @property
    def throughput(self) -> float:
        """Application deliveries per simulated time unit."""
        if self.duration <= 0:
            return 0.0
        return self.application_deliveries / self.duration

    def as_dict(self) -> Dict[str, float]:
        """Flatten the report for benchmark tables."""
        return {
            "delivery_latency_mean": self.delivery_latency.mean,
            "delivery_latency_p95": self.delivery_latency.p95,
            "delivery_latency_max": self.delivery_latency.maximum,
            "application_sends": float(self.application_sends),
            "application_deliveries": float(self.application_deliveries),
            "null_messages": float(self.null_messages),
            "null_ratio": self.null_ratio,
            "blocked_sends": float(self.blocked_sends),
            "throughput": self.throughput,
            "network_messages_sent": float(self.network.get("messages_sent", 0)),
            "network_bytes_sent": float(self.network.get("bytes_sent", 0)),
        }


def build_report(
    trace: EventTrace,
    network_stats: Optional[NetworkStats] = None,
    duration: float = 0.0,
    group: Optional[str] = None,
) -> MetricsReport:
    """Derive a :class:`MetricsReport` from a trace and network counters."""
    sends = trace.events(kind=SEND, group=group)
    deliveries = trace.events(kind=DELIVER, group=group)
    nulls = trace.events(kind=NULL_SEND, group=group)
    blocked = trace.events(kind=BLOCKED_SEND, group=group)
    return MetricsReport(
        delivery_latency=summarize_latencies(trace.delivery_latencies(group)),
        application_sends=len(sends),
        application_deliveries=len(deliveries),
        null_messages=len(nulls),
        blocked_sends=len(blocked),
        network=network_stats.snapshot() if network_stats is not None else {},
        duration=duration,
    )


def messages_per_delivered_multicast(
    trace: EventTrace, network_stats: NetworkStats, group: Optional[str] = None
) -> float:
    """Network messages transmitted per application multicast sent.

    This is the classic "message cost" figure: for a symmetric group of
    ``n`` it tends towards ``n - 1`` plus the amortised time-silence cost;
    for an asymmetric group towards ``n`` (one unicast to the sequencer plus
    ``n - 1`` multicast legs).
    """
    sends = trace.events(kind=SEND, group=group)
    if not sends:
        return 0.0
    return network_stats.messages_sent / len(sends)


def blocking_times(trace: EventTrace, group: Optional[str] = None) -> List[float]:
    """Durations between a blocked send and its eventual transmission.

    Pairs BLOCKED_SEND and UNBLOCKED_SEND events per (process, group) in
    FIFO order, which matches how the deferred-send queue drains.
    """
    blocked: Dict[tuple, List[float]] = {}
    durations: List[float] = []
    for event in trace:
        key = (event.process, event.group)
        if group is not None and event.group != group:
            continue
        if event.kind == BLOCKED_SEND:
            blocked.setdefault(key, []).append(event.time)
        elif event.kind == UNBLOCKED_SEND:
            queue = blocked.get(key)
            if queue:
                durations.append(event.time - queue.pop(0))
    return durations


def view_agreement_latency(
    trace: EventTrace, group: str, crashed_process: str
) -> Dict[str, float]:
    """Per-process latency from the first suspicion of ``crashed_process``
    to the installation of a view excluding it."""
    result: Dict[str, float] = {}
    for process in trace.processes():
        suspect_time: Optional[float] = None
        for event in trace.events(kind=SUSPECT, process=process, group=group):
            if event.detail("target") == crashed_process:
                suspect_time = event.time
                break
        if suspect_time is None:
            continue
        for event in trace.events(kind=VIEW_INSTALL, process=process, group=group):
            members = event.detail("members", ())
            if crashed_process not in members and event.time >= suspect_time:
                result[process] = event.time - suspect_time
                break
    return result
