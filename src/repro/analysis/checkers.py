"""Trace-based checkers for the paper's guarantees.

The paper states its guarantees as predicates over executions (§3); these
functions evaluate the corresponding predicates over an
:class:`~repro.net.trace.EventTrace` recorded during a simulation.  They are
used by the integration tests, the property-based tests and the benchmark
harness (every benchmark asserts its run was correct before reporting
numbers).

Checked properties
------------------
* **MD4 / MD4' (total order)** -- any two processes deliver the messages
  they both deliver in the same relative order, within a group and across
  groups, and each process's delivery order respects the happened-before
  relation of the sends.
* **MD1 (validity)** -- a message is delivered only while its sender is in
  the delivering process's current view of the message's group.
* **MD3 / VC3 (view atomicity / virtual synchrony)** -- processes that
  install the same pair of consecutive views deliver the same set of the
  group's messages between them.
* **VC1 (view validity)** -- processes that never suspect each other
  install identical view sequences (checked pairwise on surviving,
  never-partitioned processes).
* **MD5 / MD5' (causal prefix)** -- if ``m -> m'`` and ``m'`` is delivered
  at a process while ``m``'s sender is still in that process's view of
  ``m``'s group, then ``m`` was delivered before ``m'``.

Crashed processes are exempt from liveness-flavoured checks (a crashed
process may have delivered a prefix only), exactly as the paper's
properties quantify over functioning processes.

These checkers are post-hoc: they need a materialized
:class:`~repro.net.trace.EventTrace` and some are quadratic in processes
or messages.  :mod:`repro.analysis.online` checks the same predicates
incrementally from the trace recorder's sink API with amortized O(1)-O(k)
work per event; both suites agree on every verdict (pinned down by
``tests/test_online_checkers.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.net.trace import DELIVER, DEPART, EventTrace, SEND, VIEW_INSTALL


@dataclass
class CheckResult:
    """Outcome of one (or several) property checks."""

    name: str
    passed: bool
    violations: List[str] = field(default_factory=list)

    def merge(self, other: "CheckResult") -> "CheckResult":
        """Combine two results into one (AND of passes, union of violations)."""
        return CheckResult(
            name=f"{self.name}+{other.name}",
            passed=self.passed and other.passed,
            violations=self.violations + other.violations,
        )

    def __bool__(self) -> bool:
        return self.passed


def _subsequence_of_common(first: Sequence[str], second: Sequence[str]) -> Optional[Tuple[str, str]]:
    """Return a witness pair ordered differently in the two sequences, if any.

    Only messages delivered by *both* processes are compared (a process may
    legitimately not deliver messages sent by members it excluded).
    """
    common = set(first) & set(second)
    first_common = [item for item in first if item in common]
    second_common = [item for item in second if item in common]
    position = {item: index for index, item in enumerate(second_common)}
    previous_index = -1
    previous_item: Optional[str] = None
    for item in first_common:
        index = position[item]
        if index < previous_index and previous_item is not None:
            return (previous_item, item)
        if index > previous_index:
            previous_index = index
            previous_item = item
    return None


def _delivery_records(
    trace: EventTrace, process: str, group: Optional[str]
) -> List[Tuple[str, Optional[frozenset]]]:
    """``(message_id, view members at delivery)`` per delivery at ``process``.

    The members are those of the delivering process's view of the
    *message's* group in force at the delivery; ``None`` when no view was
    ever installed (stacks without membership record no installs -- their
    deliveries stay unconditionally order-constrained).
    """
    timelines = _view_timelines(trace, process)
    records: List[Tuple[str, Optional[frozenset]]] = []
    for event in trace.events(kind=DELIVER, process=process):
        if event.message_id is None:
            continue
        if group is not None and event.group != group:
            continue
        members: Optional[frozenset] = None
        if event.group is not None:
            timeline = timelines.get(event.group)
            if timeline:
                members = _view_at(timeline, event.time, event.seq)
        records.append((event.message_id, members))
    return records


def check_total_order(trace: EventTrace, group: Optional[str] = None) -> CheckResult:
    """MD4/MD4': pairwise identical relative delivery order, plus causal
    consistency of each process's own delivery order.

    With ``group`` given, only that group's deliveries are compared (MD4);
    without it, each process's *entire* cross-group delivery sequence is
    compared (MD4').

    The pairwise comparison is scoped by mutual view membership: a delivery
    at ``p`` constrains the pair ``(p, q)`` only while ``p``'s view of the
    message's group still contains ``q`` (and vice versa).  Processes that
    have mutually excluded each other -- the two sides of a partition --
    proceed independently, exactly as the paper's Example 3 permits;
    requiring their post-divergence sequences to agree would reject correct
    executions.  Deliveries without any installed view stay constrained,
    so stacks that record no membership are checked in full.
    """
    violations: List[str] = []
    processes = trace.processes()
    records = {
        process: _delivery_records(trace, process, group) for process in processes
    }
    sequences = {
        process: [message for message, _ in records[process]]
        for process in processes
    }
    for i, first_process in enumerate(processes):
        for second_process in processes[i + 1 :]:
            witness = _subsequence_of_common(
                [
                    message
                    for message, members in records[first_process]
                    if members is None or second_process in members
                ],
                [
                    message
                    for message, members in records[second_process]
                    if members is None or first_process in members
                ],
            )
            if witness is not None:
                violations.append(
                    f"total order violated between {first_process} and {second_process}: "
                    f"{witness[0]} vs {witness[1]}"
                )
    # Causal consistency of each local order: m -> m' implies m delivered
    # before m' whenever both are delivered.
    pairs = trace.happened_before_pairs(group)
    for process in processes:
        order = {msg_id: index for index, msg_id in enumerate(sequences[process])}
        for earlier, later in pairs:
            if earlier in order and later in order and order[earlier] > order[later]:
                violations.append(
                    f"{process} delivered {later} before causally preceding {earlier}"
                )
    return CheckResult("total_order", not violations, violations)


def _view_timelines(
    trace: EventTrace, process: str
) -> Dict[str, List[Tuple[float, int, frozenset]]]:
    """Per group, the timeline of views installed at ``process``.

    Shared by the MD1 and MD5' checkers (and mirrored live by the online
    checkers' view tracking).
    """
    view_timeline: Dict[str, List[Tuple[float, int, frozenset]]] = {}
    for event in trace.events(kind=VIEW_INSTALL, process=process):
        view_timeline.setdefault(event.group, []).append(
            (event.time, event.seq, frozenset(event.detail("members", ())))
        )
    return view_timeline


def _view_at(
    timeline: Iterable[Tuple[float, int, frozenset]], time: float, seq: int
) -> Optional[frozenset]:
    """The view in force at ``(time, seq)``: the last install not after it."""
    current: Optional[frozenset] = None
    for install_time, install_seq, members in timeline:
        if (install_time, install_seq) <= (time, seq):
            current = members
        else:
            break
    return current


def check_sender_in_view(trace: EventTrace) -> CheckResult:
    """MD1: each delivery's sender belongs to the view in force at that
    process for the message's group at delivery time."""
    violations: List[str] = []
    for process in trace.processes():
        view_timeline = _view_timelines(trace, process)
        for event in trace.events(kind=DELIVER, process=process):
            timeline = view_timeline.get(event.group)
            if not timeline:
                continue
            current = _view_at(timeline, event.time, event.seq)
            if current is not None and event.sender not in current:
                violations.append(
                    f"{process} delivered {event.message_id} from {event.sender} "
                    f"outside its view {sorted(current)} of {event.group}"
                )
    return CheckResult("sender_in_view", not violations, violations)


def check_view_sequences(
    trace: EventTrace,
    group: str,
    processes: Optional[Iterable[str]] = None,
) -> CheckResult:
    """VC1: the listed processes installed identical view sequences.

    Callers pass the set of processes expected to agree (e.g. the members of
    one surviving partition component); by default every process that
    installed at least one view of the group and never crashed is included,
    which is only appropriate for partition-free runs.
    """
    violations: List[str] = []
    crashed = set(trace.crashed_processes())
    if processes is None:
        candidates = [
            process
            for process in trace.processes()
            if process not in crashed and trace.view_sequence(process, group)
        ]
    else:
        candidates = [process for process in processes if process not in crashed]
    sequences = {process: trace.view_sequence(process, group) for process in candidates}
    if len(candidates) > 1:
        reference_process = candidates[0]
        reference = sequences[reference_process]
        for process in candidates[1:]:
            if sequences[process] != reference:
                violations.append(
                    f"view sequences differ for {group}: {reference_process}="
                    f"{[sorted(view) for view in reference]} vs {process}="
                    f"{[sorted(view) for view in sequences[process]]}"
                )
    return CheckResult("view_sequences", not violations, violations)


def check_same_view_delivery_sets(
    trace: EventTrace,
    group: str,
    processes: Optional[Iterable[str]] = None,
) -> CheckResult:
    """MD3/VC3 (virtual synchrony): processes that installed the same pair
    of consecutive views delivered the same set of the group's messages
    between those installations."""
    violations: List[str] = []
    crashed = set(trace.crashed_processes())
    candidates = [
        process
        for process in (processes if processes is not None else trace.processes())
        if process not in crashed
    ]
    # For each process: list of (view_index, delivered ids while that view
    # was current).
    per_process: Dict[str, Dict[int, Set[str]]] = {}
    for process in candidates:
        deliveries_by_view: Dict[int, Set[str]] = {}
        for event in trace.events(kind=DELIVER, process=process, group=group):
            view_index = event.detail("view_index")
            if view_index is None:
                continue
            deliveries_by_view.setdefault(int(view_index), set()).add(event.message_id)
        per_process[process] = deliveries_by_view
    views_of = {
        process: trace.view_sequence(process, group) for process in candidates
    }
    for i, first in enumerate(candidates):
        for second in candidates[i + 1 :]:
            first_views = views_of[first]
            second_views = views_of[second]
            # Compare deliveries in view r whenever both installed the same
            # view r and the same view r+1 (the paper's premise for MD3).
            shared = min(len(first_views), len(second_views))
            for r in range(shared - 1):
                if first_views[r] != second_views[r]:
                    continue
                if first_views[r + 1] != second_views[r + 1]:
                    continue
                delivered_first = per_process[first].get(r, set())
                delivered_second = per_process[second].get(r, set())
                if delivered_first != delivered_second:
                    difference = delivered_first ^ delivered_second
                    violations.append(
                        f"virtual synchrony violated in {group} view {r}: "
                        f"{first} vs {second} differ on {sorted(difference)}"
                    )
    return CheckResult("same_view_delivery_sets", not violations, violations)


def check_causal_prefix(trace: EventTrace) -> CheckResult:
    """MD5/MD5': a delivered message is preceded by every causally prior
    message whose sender is still in the delivering process's view of that
    message's group at delivery time."""
    violations: List[str] = []
    pairs = trace.happened_before_pairs()
    send_info: Dict[str, Tuple[str, str]] = {}
    for event in trace.events(kind=SEND):
        if event.message_id is not None:
            send_info[event.message_id] = (event.sender or event.process, event.group)
    for process in trace.processes():
        delivered_order = trace.delivered_ids(process)
        delivered_set = set(delivered_order)
        position = {msg_id: index for index, msg_id in enumerate(delivered_order)}
        view_timeline = _view_timelines(trace, process)
        # A voluntary departure ends the process's membership: afterwards it
        # keeps no view of the group, so causal predecessors from that group
        # are exempt (same clause of MD5' that covers excluded senders).
        departed_at: Dict[str, Tuple[float, int]] = {}
        for event in trace.events(kind=DEPART, process=process):
            if event.group is not None and event.group not in departed_at:
                departed_at[event.group] = (event.time, event.seq)
        deliver_events = {
            event.message_id: event
            for event in trace.events(kind=DELIVER, process=process)
        }
        for earlier, later in pairs:
            if later not in delivered_set:
                continue
            if earlier not in send_info:
                continue
            earlier_sender, earlier_group = send_info[earlier]
            later_event = deliver_events.get(later)
            if later_event is None:
                continue
            departure = departed_at.get(earlier_group)
            if departure is not None and departure <= (later_event.time, later_event.seq):
                # The process had departed earlier's group by then.
                continue
            # View of earlier's group in force when `later` was delivered.
            current = _view_at(
                view_timeline.get(earlier_group, []),
                later_event.time,
                later_event.seq,
            )
            if current is None or earlier_sender not in current:
                # MD5' explicitly allows the causal predecessor to be
                # missing when its sender has been excluded from the view.
                continue
            if earlier not in delivered_set or position[earlier] > position[later]:
                violations.append(
                    f"{process} delivered {later} without (or before) causally "
                    f"preceding {earlier} whose sender {earlier_sender} is still "
                    f"in its view of {earlier_group}"
                )
    return CheckResult("causal_prefix", not violations, violations)


def check_all(
    trace: EventTrace,
    groups: Optional[Iterable[str]] = None,
    view_agreement_sets: Optional[Dict[str, Iterable[str]]] = None,
) -> CheckResult:
    """Run every checker and combine the results.

    ``view_agreement_sets`` optionally maps group id to the processes
    expected to agree on view sequences (use it in partition scenarios,
    where only same-side processes must agree).

    The happened-before relation and the per-kind event indexes are
    memoized inside :class:`~repro.net.trace.EventTrace`, so the global and
    per-group passes here share one computation per variant instead of
    re-deriving them.  For runs too large to materialize a trace at all,
    use :class:`repro.analysis.online.OnlineCheckSuite` instead.
    """
    result = check_total_order(trace)
    result = result.merge(check_sender_in_view(trace))
    result = result.merge(check_causal_prefix(trace))
    for group in groups if groups is not None else trace.groups():
        expected = view_agreement_sets.get(group) if view_agreement_sets else None
        result = result.merge(check_total_order(trace, group))
        result = result.merge(check_view_sequences(trace, group, expected))
        result = result.merge(check_same_view_delivery_sets(trace, group, expected))
    return result
