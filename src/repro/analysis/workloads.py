"""Legacy closed-loop workload generators (thin wrappers, deprecated).

This module predates :mod:`repro.workloads`; its generators pre-materialize
a fixed send schedule, where the new subsystem drives *open-loop* traffic
reactively inside simulation time (see
:class:`repro.workloads.client.OpenLoopClient`).  The classes below are
kept as thin wrappers over the new profiles so existing callers keep
working, but new code should use :mod:`repro.workloads` directly --
profiles compose with any protocol stack, the session layer and online
verification, none of which a materialized schedule can reach.

The :class:`WorkloadRunner` drives a schedule through any cluster-shaped
object (``__getitem__`` to a process plus ``run``) and warns accordingly;
nothing in this module imports a concrete cluster type.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.workloads.profiles import (
    ScheduledSend,
    WorkloadProfile,
    get_profile,
    materialize,
)

__all__ = ["ScheduledSend", "Workload", "UniformWorkload", "BurstyWorkload", "WorkloadRunner"]


class Workload:
    """Base class: a workload is an iterable of :class:`ScheduledSend`."""

    def sends(self) -> List[ScheduledSend]:
        """The full schedule of sends, ordered by time."""
        raise NotImplementedError


def _materialize_per_pair(
    profile_name: str,
    senders: Sequence[str],
    groups: Sequence[str],
    *,
    start: float,
    duration: float,
    seed: int,
    payload_factory=None,
    **profile_options,
) -> List[ScheduledSend]:
    """One independent profile stream per (sender, group) pair, merged.

    The historical generators ran one schedule per pair -- every listed
    sender sends at the configured rate in every group, and bursts are
    per-sender back-to-back runs -- so the wrappers materialize per pair
    rather than one aggregate stream with random selection.
    """
    schedule: List[ScheduledSend] = []
    for index, (sender, group) in enumerate(
        (sender, group) for sender in senders for group in groups
    ):
        profile = get_profile(profile_name, **profile_options)
        schedule.extend(
            materialize(
                profile,
                [sender],
                [group],
                start=start,
                duration=duration,
                seed=seed * 10007 + index,
                payload_factory=payload_factory,
            )
        )
    schedule.sort(key=lambda send: send.time)
    return schedule


@dataclass
class UniformWorkload(Workload):
    """Steady-rate sends: a wrapper over the ``"uniform"`` profile.

    ``rate`` is multicasts per time unit per (process, group) pair, as it
    always was: each pair gets its own profile stream, so every listed
    sender sends ~``rate * duration`` times in every group.
    """

    senders: Sequence[str]
    groups: Sequence[str]
    rate: float = 0.2
    duration: float = 100.0
    start_time: float = 1.0
    seed: int = 0
    payload_factory: Optional[object] = None

    def sends(self) -> List[ScheduledSend]:
        return _materialize_per_pair(
            "uniform",
            self.senders,
            self.groups,
            start=self.start_time,
            duration=self.duration,
            seed=self.seed,
            payload_factory=(
                self.payload_factory if callable(self.payload_factory) else None
            ),
            rate=self.rate,
        )


@dataclass
class BurstyWorkload(Workload):
    """On/off bursts: a wrapper over the ``"bursty"`` profile.

    Each (sender, group) pair runs its own bursty stream -- ``burst_size``
    back-to-back sends from that one sender, one burst per
    ``burst_interval``, with ``intra_burst_gap`` pacing the burst -- which
    preserves the historical per-sender burst shape (the regime where
    time-silence matters most).
    """

    senders: Sequence[str]
    groups: Sequence[str]
    burst_size: int = 5
    burst_interval: float = 20.0
    intra_burst_gap: float = 0.1
    duration: float = 100.0
    start_time: float = 1.0
    seed: int = 0

    def sends(self) -> List[ScheduledSend]:
        rate = self.burst_size / self.burst_interval
        peak = 1.0 / (self.intra_burst_gap * rate) if self.intra_burst_gap > 0 else 20.0
        return _materialize_per_pair(
            "bursty",
            self.senders,
            self.groups,
            start=self.start_time,
            duration=self.duration,
            seed=self.seed,
            rate=rate,
            burst_size=self.burst_size,
            peak_factor=max(peak, 1.01),
        )


class WorkloadRunner:
    """Injects a materialized workload into a cluster and runs it.

    Deprecated alongside the cluster constructors it drives: prefer
    :meth:`repro.api.Session.attach_client` with an
    :class:`~repro.workloads.client.OpenLoopClient`, which needs no
    materialized schedule and works on every protocol stack.
    """

    def __init__(self, cluster, workload: Workload) -> None:
        warnings.warn(
            "WorkloadRunner is deprecated; attach a repro.workloads."
            "OpenLoopClient to a repro.api.Session instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.cluster = cluster
        self.workload = workload
        self.sent_ids: List[str] = []
        self.scheduled_count = 0

    def _issue(self, send: ScheduledSend) -> None:
        process = self.cluster.processes[send.process]
        if process.crashed or not process.is_member(send.group):
            return
        message_id = process.multicast(send.group, send.payload)
        if message_id is not None:
            self.sent_ids.append(message_id)

    def run(self, drain_time: float = 50.0) -> None:
        """Schedule every send, run the workload window, then drain."""
        schedule = self.workload.sends()
        self.scheduled_count = len(schedule)
        for send in schedule:
            self.cluster.sim.schedule_at(send.time, self._issue, send, label="workload-send")
        end_time = max((send.time for send in schedule), default=self.cluster.sim.now)
        self.cluster.sim.run(until=end_time + drain_time)

    def delivered_everywhere(self, group: str) -> bool:
        """Whether every surviving member delivered every application send
        issued in ``group`` (a quick liveness sanity check for benchmarks)."""
        trace = self.cluster.trace()
        sent = {
            event.message_id
            for event in trace.sends(group=group)
            if event.message_id is not None
        }
        for process in self.cluster.members_of(group):
            delivered = set(trace.delivered_ids(process.process_id, group))
            if not sent <= delivered:
                return False
        return True
