"""Deterministic workload generators for benchmarks and integration tests.

A workload decides *who multicasts what, where and when*.  Workloads are
deterministic given their seed so every benchmark row is reproducible, and
they drive the cluster purely through the public
:class:`~repro.core.process.NewtopProcess` API.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cluster import NewtopCluster


@dataclass
class ScheduledSend:
    """One application multicast a workload wants to happen."""

    time: float
    process: str
    group: str
    payload: object


class Workload:
    """Base class: a workload is an iterable of :class:`ScheduledSend`."""

    def sends(self) -> List[ScheduledSend]:
        """The full schedule of sends, ordered by time."""
        raise NotImplementedError


@dataclass
class UniformWorkload(Workload):
    """Every listed process multicasts at a steady rate in each group.

    ``rate`` is multicasts per time unit per (process, group) pair; sends
    are jittered deterministically so processes do not send in lock-step.
    """

    senders: Sequence[str]
    groups: Sequence[str]
    rate: float = 0.2
    duration: float = 100.0
    start_time: float = 1.0
    seed: int = 0
    payload_factory: Optional[object] = None

    def sends(self) -> List[ScheduledSend]:
        rng = random.Random(self.seed)
        schedule: List[ScheduledSend] = []
        interval = 1.0 / self.rate if self.rate > 0 else self.duration
        for process in self.senders:
            for group in self.groups:
                time = self.start_time + rng.uniform(0, interval)
                sequence = 0
                while time < self.start_time + self.duration:
                    payload = (
                        self.payload_factory(process, group, sequence)
                        if callable(self.payload_factory)
                        else f"{process}/{group}/{sequence}"
                    )
                    schedule.append(
                        ScheduledSend(time=time, process=process, group=group, payload=payload)
                    )
                    sequence += 1
                    time += rng.uniform(0.5 * interval, 1.5 * interval)
        schedule.sort(key=lambda send: send.time)
        return schedule


@dataclass
class BurstyWorkload(Workload):
    """Senders alternate between idle periods and bursts of back-to-back
    multicasts -- the regime where time-silence matters most."""

    senders: Sequence[str]
    groups: Sequence[str]
    burst_size: int = 5
    burst_interval: float = 20.0
    intra_burst_gap: float = 0.1
    duration: float = 100.0
    start_time: float = 1.0
    seed: int = 0

    def sends(self) -> List[ScheduledSend]:
        rng = random.Random(self.seed)
        schedule: List[ScheduledSend] = []
        for process in self.senders:
            for group in self.groups:
                time = self.start_time + rng.uniform(0, self.burst_interval)
                sequence = 0
                while time < self.start_time + self.duration:
                    for burst_index in range(self.burst_size):
                        send_time = time + burst_index * self.intra_burst_gap
                        if send_time >= self.start_time + self.duration:
                            break
                        schedule.append(
                            ScheduledSend(
                                time=send_time,
                                process=process,
                                group=group,
                                payload=f"{process}/{group}/burst{sequence}.{burst_index}",
                            )
                        )
                    sequence += 1
                    time += self.burst_interval * rng.uniform(0.8, 1.2)
        schedule.sort(key=lambda send: send.time)
        return schedule


class WorkloadRunner:
    """Injects a workload into a cluster and runs the simulation.

    The runner schedules each send as a simulator event (so sends interleave
    with protocol traffic exactly as a real application's would), then runs
    long enough for the deliveries to drain.
    """

    def __init__(self, cluster: NewtopCluster, workload: Workload) -> None:
        self.cluster = cluster
        self.workload = workload
        self.sent_ids: List[str] = []
        self.scheduled_count = 0

    def _issue(self, send: ScheduledSend) -> None:
        process = self.cluster.processes[send.process]
        if process.crashed or not process.is_member(send.group):
            return
        message_id = process.multicast(send.group, send.payload)
        if message_id is not None:
            self.sent_ids.append(message_id)

    def run(self, drain_time: float = 50.0) -> None:
        """Schedule every send, run the workload window, then drain."""
        schedule = self.workload.sends()
        self.scheduled_count = len(schedule)
        for send in schedule:
            self.cluster.sim.schedule_at(send.time, self._issue, send, label="workload-send")
        end_time = max((send.time for send in schedule), default=self.cluster.sim.now)
        self.cluster.sim.run(until=end_time + drain_time)

    def delivered_everywhere(self, group: str) -> bool:
        """Whether every surviving member delivered every application send
        issued in ``group`` (a quick liveness sanity check for benchmarks)."""
        trace = self.cluster.trace()
        sent = {
            event.message_id
            for event in trace.sends(group=group)
            if event.message_id is not None
        }
        for process in self.cluster.members_of(group):
            delivered = set(trace.delivered_ids(process.process_id, group))
            if not sent <= delivered:
                return False
        return True
