"""Analysis tooling: property checkers, metrics, overhead and workloads.

* :mod:`repro.analysis.checkers` -- verify the paper's delivery and view
  guarantees (MD1-MD5', VC1-VC3) over recorded event traces (post-hoc).
* :mod:`repro.analysis.online` -- the same guarantees checked incrementally
  while events stream through the trace recorder's sink API; scales to
  1000-process runs with no materialized trace.
* :mod:`repro.analysis.metrics` -- latency / throughput / message-count
  summaries derived from traces and network statistics.
* :mod:`repro.analysis.overhead` -- per-message protocol overhead models
  for Newtop and the §6 comparison protocols (ISIS vector clocks, Psync
  context graphs, piggybacking).
* :mod:`repro.analysis.workloads` -- legacy closed-loop schedule
  generators, now thin wrappers over the open-loop :mod:`repro.workloads`
  profiles (deprecated; new code should use that package directly).
"""

from repro.analysis.checkers import (
    CheckResult,
    check_all,
    check_causal_prefix,
    check_same_view_delivery_sets,
    check_sender_in_view,
    check_total_order,
    check_view_sequences,
)
from repro.analysis.metrics import LatencySummary, MetricsReport, summarize_latencies
from repro.analysis.online import (
    ALL_CHECKS,
    GroupScopedCheckSuite,
    OnlineCausalOrder,
    OnlineCheckSuite,
    OnlineChecker,
    OnlineSenderInView,
    OnlineTotalOrder,
    OnlineViewAgreement,
    OnlineVirtualSynchrony,
    check_events,
)
from repro.analysis.overhead import (
    isis_overhead_bytes,
    newtop_overhead_bytes,
    piggyback_overhead_bytes,
    psync_overhead_bytes,
)
from repro.analysis.workloads import UniformWorkload, BurstyWorkload, WorkloadRunner

__all__ = [
    "ALL_CHECKS",
    "BurstyWorkload",
    "CheckResult",
    "GroupScopedCheckSuite",
    "LatencySummary",
    "MetricsReport",
    "OnlineCausalOrder",
    "OnlineCheckSuite",
    "OnlineChecker",
    "OnlineSenderInView",
    "OnlineTotalOrder",
    "OnlineViewAgreement",
    "OnlineVirtualSynchrony",
    "UniformWorkload",
    "WorkloadRunner",
    "check_all",
    "check_events",
    "check_causal_prefix",
    "check_same_view_delivery_sets",
    "check_sender_in_view",
    "check_total_order",
    "check_view_sequences",
    "isis_overhead_bytes",
    "newtop_overhead_bytes",
    "piggyback_overhead_bytes",
    "psync_overhead_bytes",
    "summarize_latencies",
]
