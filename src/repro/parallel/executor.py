"""The worker pool: seed-stable multi-core execution of experiment units.

Every experiment in this repository -- a sweep cell, a scenario, a
benchmark repetition -- is an *independent* simulation: it builds its own
:class:`~repro.api.Session`, draws every random number from seeds carried
in its spec, and returns a JSON-shaped summary.  That independence is what
makes the work shardable across OS processes, and what this module
exploits: a :class:`ParallelExecutor` runs a list of :class:`WorkUnit`
objects on a pool of worker processes and returns one :class:`UnitResult`
per unit, in submission order.

Determinism contract
--------------------
Sharding must not change results.  Three properties make parallel and
serial runs byte-identical:

* **Seeds travel in the spec, not in the shard.**  A unit's function
  derives all randomness from its arguments (e.g. ``SweepSpec.seed``);
  nothing is drawn from shard order, worker identity or wall clock.
* **Interpreter state is reset per unit.**  The experiment layers call
  :func:`repro.core.messages.reset_message_counter` at unit start, so a
  unit behaves identically whether it is the first job of a fresh worker
  or the hundredth cell of a serial loop (message ids participate in the
  safe2 tie-break).
* **Workers are forked, not spawned, where the platform allows.**  A
  forked worker inherits the parent's interpreter state -- including the
  per-process string-hash seed, which influences set iteration order -- so
  a unit observes the same Python semantics in a worker as inline.  On
  spawn-only platforms set ``PYTHONHASHSEED`` for cross-process identity.

Failure isolation
-----------------
The pool is parent-driven: each worker has a private task queue and the
parent records which unit a worker holds, so failures are attributed
exactly.  A worker that dies mid-unit (segfault, ``os._exit``, OOM kill)
marks *its* unit ``crashed`` and is replaced; a unit that exceeds its
timeout has its worker terminated and is marked ``timeout``; a unit whose
function raises is marked ``error`` with the traceback.  The run always
completes with one result per unit -- a lost worker never kills the run.

Progress streaming
------------------
Workers forward events over the shared result queue as they happen:
``start`` when a unit begins, ``log`` for :func:`worker_log` lines emitted
inside unit functions, ``done`` when a result is ready.  The executor
relays them to the ``on_event`` callback, so a long sweep can print rows
as cells finish regardless of which process computed them.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Unit states a result can report.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_CRASHED = "crashed"
STATUS_TIMEOUT = "timeout"

#: How long the parent waits on the result queue per poll; bounds the
#: latency of liveness/deadline checks without busy-waiting.
_POLL_INTERVAL = 0.05

#: Grace period for workers to exit after the shutdown sentinel.
_JOIN_TIMEOUT = 2.0


@dataclass(frozen=True)
class WorkUnit:
    """One independent job: a picklable module-level function plus args.

    ``unit_id`` names the unit in results and progress events; it must be
    unique within one :meth:`ParallelExecutor.run` call.  ``timeout``
    overrides the executor-wide per-unit timeout (``None`` inherits it).
    """

    unit_id: str
    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    timeout: Optional[float] = None


@dataclass
class UnitResult:
    """The outcome of one work unit."""

    unit_id: str
    status: str
    value: Any = None
    #: Formatted traceback (``error``) or a diagnosis (``crashed`` /
    #: ``timeout``); ``None`` on success.
    error: Optional[str] = None
    wall_seconds: float = 0.0
    #: Index of the pool worker that ran the unit (``None`` inline).
    worker: Optional[int] = None

    @property
    def ok(self) -> bool:
        """Whether the unit completed and returned a value."""
        return self.status == STATUS_OK


#: Set by :func:`_worker_main` so :func:`worker_log` can route lines from
#: unit functions back to the parent; stays ``None`` when running inline.
_WORKER_CONTEXT: Optional[Dict[str, Any]] = None


def worker_log(message: str) -> None:
    """Emit one progress line from inside a unit function.

    In a pool worker the line is forwarded to the parent's ``on_event``
    callback as a ``log`` event; when the unit runs inline (serial mode)
    it is delivered to the inline callback directly.  Unit functions can
    therefore narrate long jobs without caring where they execute.
    """
    context = _WORKER_CONTEXT
    if context is None:
        return
    emit = context.get("emit")
    if emit is not None:
        emit(("log", context.get("unit_id"), context.get("worker"), message))


def _worker_main(worker_index: int, task_queue, result_queue) -> None:
    """Worker loop: pull a task, announce it, run it, post the result."""
    global _WORKER_CONTEXT
    while True:
        task = task_queue.get()
        if task is None:
            return
        unit_id, fn, args, kwargs = task
        result_queue.put(("start", unit_id, worker_index, None))
        _WORKER_CONTEXT = {
            "unit_id": unit_id,
            "worker": worker_index,
            "emit": result_queue.put,
        }
        started = time.time()
        try:
            value = fn(*args, **kwargs)
            outcome = ("done", unit_id, worker_index,
                       (STATUS_OK, value, None, time.time() - started))
        except BaseException:  # noqa: BLE001 - the traceback is the payload
            outcome = ("done", unit_id, worker_index,
                       (STATUS_ERROR, None, traceback.format_exc(),
                        time.time() - started))
        finally:
            _WORKER_CONTEXT = None
        result_queue.put(outcome)


def default_pool_size() -> int:
    """A sensible pool size: every core, floor of one."""
    return max(1, os.cpu_count() or 1)


def _make_context():
    """Prefer fork (state-identical workers, instant start); fall back to
    the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class _Worker:
    """Parent-side handle for one pool process."""

    def __init__(self, context, index: int, result_queue) -> None:
        self.index = index
        self.task_queue = context.Queue(1)
        self.process = context.Process(
            target=_worker_main,
            args=(index, self.task_queue, result_queue),
            daemon=True,
        )
        self.process.start()
        #: The (unit, dispatch time, deadline) currently held, if any.
        self.assignment: Optional[Tuple[WorkUnit, float, Optional[float]]] = None
        self.retired = False

    def assign(self, unit: WorkUnit, default_timeout: Optional[float]) -> None:
        timeout = unit.timeout if unit.timeout is not None else default_timeout
        now = time.time()
        self.assignment = (unit, now, now + timeout if timeout else None)
        self.task_queue.put((unit.unit_id, unit.fn, tuple(unit.args), dict(unit.kwargs)))

    @property
    def idle(self) -> bool:
        return self.assignment is None and not self.retired

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        """Ask the worker to exit once its current unit (if any) finishes."""
        if not self.retired:
            self.retired = True
            try:
                self.task_queue.put_nowait(None)
            except queue_module.Full:  # pragma: no cover - capacity-1 race
                pass

    def kill(self) -> None:
        self.retired = True
        if self.process.is_alive():
            self.process.terminate()

    def join(self, timeout: float) -> None:
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(_JOIN_TIMEOUT)


class ParallelExecutor:
    """Runs work units across a pool of OS processes.

    Parameters
    ----------
    pool_size:
        Number of worker processes (default: one per core).  ``run`` with
        ``pool_size <= 1`` still uses one worker process, preserving crash
        isolation and timeouts; use :meth:`run_inline` for a true serial
        baseline inside the calling process.
    timeout:
        Per-unit wall-clock budget in seconds (``None``: unlimited).  A
        unit past its deadline has its worker terminated and reports
        ``status="timeout"``.
    on_event:
        Optional callback ``(kind, unit_id, worker, payload)`` receiving
        ``start`` / ``log`` / ``done`` events as they stream in.
    """

    def __init__(
        self,
        pool_size: Optional[int] = None,
        timeout: Optional[float] = None,
        on_event: Optional[Callable[[str, str, Optional[int], Any], None]] = None,
    ) -> None:
        self.pool_size = pool_size if pool_size else default_pool_size()
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.timeout = timeout
        self.on_event = on_event

    # ------------------------------------------------------------------
    # Serial baseline
    # ------------------------------------------------------------------
    def run_inline(self, units: Sequence[WorkUnit]) -> List[UnitResult]:
        """Run every unit in the calling process, in order.

        The serial twin of :meth:`run`: same result shape, same progress
        events, no processes -- the baseline that parallel runs are
        byte-compared against (timeouts need a worker to interrupt, so
        ``timeout`` is not enforced inline).
        """
        global _WORKER_CONTEXT
        results = []
        for unit in units:
            self._emit("start", unit.unit_id, None, None)
            _WORKER_CONTEXT = {
                "unit_id": unit.unit_id,
                "worker": None,
                "emit": lambda event: self._emit(event[0], event[1], event[2], event[3]),
            }
            started = time.time()
            try:
                value = unit.fn(*unit.args, **dict(unit.kwargs))
                result = UnitResult(unit.unit_id, STATUS_OK, value=value,
                                    wall_seconds=time.time() - started)
            except Exception:  # noqa: BLE001
                result = UnitResult(unit.unit_id, STATUS_ERROR,
                                    error=traceback.format_exc(),
                                    wall_seconds=time.time() - started)
            finally:
                _WORKER_CONTEXT = None
            results.append(result)
            self._emit("done", unit.unit_id, None, result)
        return results

    # ------------------------------------------------------------------
    # Pooled execution
    # ------------------------------------------------------------------
    def run(self, units: Sequence[WorkUnit]) -> List[UnitResult]:
        """Execute every unit on the pool; results come back in unit order.

        The parent dispatches one unit per idle worker, so at any instant
        it knows exactly which unit a worker holds -- the basis for crash
        attribution and per-unit deadlines.  The call returns only when
        every unit has a result; worker deaths and timeouts are absorbed
        by respawning.
        """
        units = list(units)
        seen = set()
        for unit in units:
            if unit.unit_id in seen:
                raise ValueError(f"duplicate unit id {unit.unit_id!r}")
            seen.add(unit.unit_id)
        if not units:
            return []
        context = _make_context()
        result_queue = context.Queue()
        pool_size = min(self.pool_size, len(units))
        workers: List[_Worker] = [
            _Worker(context, index, result_queue) for index in range(pool_size)
        ]
        next_worker_index = pool_size
        pending: List[WorkUnit] = list(units)
        results: Dict[str, UnitResult] = {}
        try:
            while len(results) < len(units):
                # Feed idle workers.
                for worker in workers:
                    if pending and worker.idle and worker.alive():
                        worker.assign(pending.pop(0), self.timeout)
                # Drain whatever arrived.
                drained = self._drain(result_queue, workers, results)
                # Liveness: a worker that died holding a unit crashes it.
                for index, worker in enumerate(workers):
                    if worker.assignment is not None and not worker.alive():
                        unit, started, _deadline = worker.assignment
                        if unit.unit_id not in results:
                            results[unit.unit_id] = UnitResult(
                                unit.unit_id, STATUS_CRASHED,
                                error=(f"worker {worker.index} exited with code "
                                       f"{worker.process.exitcode} while running the unit"),
                                wall_seconds=time.time() - started,
                                worker=worker.index,
                            )
                            self._emit("done", unit.unit_id, worker.index,
                                       results[unit.unit_id])
                        worker.assignment = None
                        worker.retired = True
                        if pending or self._assigned(workers):
                            workers[index] = _Worker(
                                context, next_worker_index, result_queue
                            )
                            next_worker_index += 1
                # Deadlines: a unit past its budget forfeits its worker.
                now = time.time()
                for index, worker in enumerate(workers):
                    if worker.assignment is None:
                        continue
                    unit, started, deadline = worker.assignment
                    if deadline is not None and now > deadline:
                        worker.kill()
                        if unit.unit_id not in results:
                            results[unit.unit_id] = UnitResult(
                                unit.unit_id, STATUS_TIMEOUT,
                                error=f"unit exceeded its {deadline - started:.1f}s budget",
                                wall_seconds=now - started,
                                worker=worker.index,
                            )
                            self._emit("done", unit.unit_id, worker.index,
                                       results[unit.unit_id])
                        worker.assignment = None
                        if pending:
                            workers[index] = _Worker(
                                context, next_worker_index, result_queue
                            )
                            next_worker_index += 1
                if not drained and len(results) < len(units):
                    time.sleep(0.001)
        finally:
            for worker in workers:
                worker.stop()
            for worker in workers:
                worker.join(_JOIN_TIMEOUT)
            result_queue.close()
        return [results[unit.unit_id] for unit in units]

    def _assigned(self, workers: List[_Worker]) -> bool:
        return any(worker.assignment is not None for worker in workers)

    def _drain(self, result_queue, workers: List[_Worker],
               results: Dict[str, UnitResult]) -> bool:
        """Pull every queued event; returns whether anything arrived."""
        drained = False
        while True:
            try:
                event = result_queue.get(timeout=_POLL_INTERVAL if not drained else 0)
            except queue_module.Empty:
                return drained
            drained = True
            kind, unit_id, worker_index, payload = event
            if kind == "start":
                self._emit("start", unit_id, worker_index, None)
            elif kind == "log":
                self._emit("log", unit_id, worker_index, payload)
            elif kind == "done":
                status, value, error, wall = payload
                result = UnitResult(unit_id, status, value=value, error=error,
                                    wall_seconds=wall, worker=worker_index)
                if unit_id not in results:
                    results[unit_id] = result
                for worker in workers:
                    if (worker.assignment is not None
                            and worker.assignment[0].unit_id == unit_id):
                        worker.assignment = None
                self._emit("done", unit_id, worker_index, result)

    def _emit(self, kind: str, unit_id: str, worker: Optional[int], payload) -> None:
        if self.on_event is not None:
            self.on_event(kind, unit_id, worker, payload)


def run_units(
    units: Sequence[WorkUnit],
    parallel: Optional[int] = None,
    timeout: Optional[float] = None,
    on_event: Optional[Callable] = None,
) -> List[UnitResult]:
    """One-call façade: ``parallel`` <= 1 (or ``None``) runs inline,
    anything larger runs on a pool of that size.  This is the entry point
    the experiment layers use, so every caller gets the same convention
    for free."""
    executor = ParallelExecutor(pool_size=parallel or 1, timeout=timeout,
                                on_event=on_event)
    if (parallel or 1) <= 1:
        return executor.run_inline(units)
    return executor.run(units)
