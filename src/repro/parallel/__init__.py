"""repro.parallel: multi-core experiment execution with seed-stable sharding.

The simulation itself is single-threaded by design (one event loop, one
logical clock domain), but experiments are *grids and batches* of
independent simulations -- sweep cells, scenario shards, benchmark
repetitions.  This package shards those units across OS processes:

* :class:`~repro.parallel.executor.ParallelExecutor` -- the worker pool:
  configurable size, per-unit timeouts, crash isolation (a dying worker
  fails its unit, never the run), streamed progress/log forwarding.
* :class:`~repro.parallel.executor.WorkUnit` /
  :class:`~repro.parallel.executor.UnitResult` -- the job and outcome
  types; :func:`~repro.parallel.executor.run_units` the one-call façade.

Because every unit derives its RNG seeds from its spec (never from shard
order) and resets per-interpreter counters at unit start, parallel and
serial executions of the same grid produce **byte-identical metrics** --
pinned by the equality tests in ``tests/test_parallel.py``.  The
integration points are ``run_sweep(spec, parallel=N)`` in
:mod:`repro.experiments`, :func:`repro.scenarios.run_scenarios`, and the
``--parallel N`` flag every script benchmark accepts::

    from repro.experiments import SweepSpec, run_sweep

    report = run_sweep(SweepSpec(stacks=("newtop", "isis")), parallel=8)
    assert report.passed
"""

from repro.parallel.executor import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ParallelExecutor,
    UnitResult,
    WorkUnit,
    default_pool_size,
    run_units,
    worker_log,
)

__all__ = [
    "STATUS_CRASHED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "ParallelExecutor",
    "UnitResult",
    "WorkUnit",
    "default_pool_size",
    "run_units",
    "worker_log",
]
