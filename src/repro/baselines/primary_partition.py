"""Primary-partition membership policy baseline.

§6: Newtop's membership service lets *every* connected subgroup keep
operating after a partition, leaving their fate to the application.
"Primary-partition" protocols [14, 18] instead allow continued operation
only in the unique subgroup that can prove it is the primary -- typically
the one containing a strict majority of the previous view -- so a partition
with no majority side halts the whole group.

This module models that policy (not a full protocol: the policy is the
point of comparison) so experiment E16 can quantify availability under the
same partition scenarios run against Newtop: which sides may continue,
which processes are blocked, and the resulting availability fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class PartitionOutcome:
    """The fate of one partition component under a membership policy."""

    members: frozenset
    may_continue: bool
    reason: str


class PrimaryPartitionMembership:
    """Majority-based primary-partition membership policy.

    The policy is evaluated against the last agreed view: a component may
    continue if and only if it contains a strict majority of that view
    (weighted variants can be expressed by passing ``weights``).
    """

    def __init__(self, view: Iterable[str], weights: Optional[Dict[str, float]] = None) -> None:
        self.view: Tuple[str, ...] = tuple(sorted(set(view)))
        if not self.view:
            raise ValueError("the view must contain at least one member")
        self.weights = dict(weights) if weights else {member: 1.0 for member in self.view}
        for member in self.view:
            self.weights.setdefault(member, 1.0)

    @property
    def total_weight(self) -> float:
        """Total weight of the current view."""
        return sum(self.weights[member] for member in self.view)

    def component_weight(self, component: Iterable[str]) -> float:
        """Weight of a component, counting only current view members."""
        return sum(self.weights[member] for member in component if member in self.view)

    def is_primary(self, component: Iterable[str]) -> bool:
        """Whether ``component`` holds a strict majority of the view."""
        return self.component_weight(component) > self.total_weight / 2.0

    def evaluate(self, components: Sequence[Iterable[str]]) -> List[PartitionOutcome]:
        """Decide, for each component, whether it may continue operating."""
        outcomes: List[PartitionOutcome] = []
        for component in components:
            members = frozenset(member for member in component if member in self.view)
            if not members:
                outcomes.append(
                    PartitionOutcome(
                        members=frozenset(component),
                        may_continue=False,
                        reason="no members of the current view",
                    )
                )
                continue
            if self.is_primary(members):
                outcomes.append(
                    PartitionOutcome(
                        members=members,
                        may_continue=True,
                        reason="holds a strict majority of the view",
                    )
                )
            else:
                outcomes.append(
                    PartitionOutcome(
                        members=members,
                        may_continue=False,
                        reason="lacks a majority of the view",
                    )
                )
        return outcomes

    def available_processes(self, components: Sequence[Iterable[str]]) -> Set[str]:
        """Processes allowed to keep processing under the policy."""
        available: Set[str] = set()
        for outcome in self.evaluate(components):
            if outcome.may_continue:
                available |= set(outcome.members)
        return available

    def availability_fraction(self, components: Sequence[Iterable[str]]) -> float:
        """Fraction of view members that may continue operating."""
        return len(self.available_processes(components)) / len(self.view)

    @staticmethod
    def newtop_availability_fraction(
        view: Iterable[str], components: Sequence[Iterable[str]]
    ) -> float:
        """Newtop's counterpart: every connected component keeps operating
        (the application decides their fate), so every functioning process
        remains available."""
        members = set(view)
        connected = set()
        for component in components:
            connected |= set(component) & members
        return len(connected) / len(members) if members else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrimaryPartitionMembership(view={list(self.view)})"
