"""ISIS-style vector-clock multicast (CBCAST + sequencer ABCAST) baseline.

Models the mechanism of Birman, Schiper & Stephenson's "Lightweight Causal
and Atomic Group Multicast" [4] that §6 of the Newtop paper compares
against:

* every multicast carries a **vector timestamp** with one entry per group
  member (this is the per-message overhead Newtop's single Lamport number
  is contrasted with);
* receivers delay a message until the causal-delivery condition on the
  vector holds (CBCAST);
* total order (ABCAST) is layered on top via a token-holder/sequencer that
  assigns a global sequence number to each causally deliverable message.

The implementation is deliberately restricted to a single group: the whole
point of the comparison is that extending vector-clock protocols to
arbitrarily overlapping groups is where they become "quite difficult and
expensive" (§6), whereas Newtop needs nothing extra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import BaselineProcess, next_baseline_message_id
from repro.core.messages import MESSAGE_ID_BYTES, SCALAR_BYTES, TAG_BYTES, estimate_payload_bytes


@dataclass(frozen=True)
class _CbcastMessage:
    """A causal multicast carrying a full vector timestamp."""

    msg_id: str
    sender: str
    vector: Tuple[int, ...]
    payload: object

    def overhead_bytes(self) -> int:
        return MESSAGE_ID_BYTES + SCALAR_BYTES + TAG_BYTES + len(self.vector) * SCALAR_BYTES


@dataclass(frozen=True)
class _AbcastOrder:
    """The sequencer's ordering announcement for one message."""

    msg_id: str
    sequence: int

    def overhead_bytes(self) -> int:
        return MESSAGE_ID_BYTES + SCALAR_BYTES + TAG_BYTES


class IsisProcess(BaselineProcess):
    """One member of an ISIS-style CBCAST/ABCAST group."""

    protocol_name = "isis"

    def __init__(self, process_id, sim, transport, members, **kwargs) -> None:
        super().__init__(process_id, sim, transport, members, **kwargs)
        self._index = {member: position for position, member in enumerate(self.members)}
        self._vector = [0] * len(self.members)
        #: Messages causally delivered but awaiting their ABCAST sequence.
        self._awaiting_order: Dict[str, _CbcastMessage] = {}
        #: Order announcements received before their message became causally
        #: deliverable.
        self._orders: Dict[str, int] = {}
        self._next_expected_sequence = 1
        #: Messages received but not yet causally deliverable.
        self._causal_queue: List[_CbcastMessage] = []
        self._sequencer_counter = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    @property
    def sequencer(self) -> str:
        """The token holder assigning the total order (smallest member id)."""
        return self.members[0]

    def multicast(self, payload: object) -> str:
        """CBCAST the payload with an updated vector timestamp."""
        position = self._index[self.process_id]
        self._vector[position] += 1
        message = _CbcastMessage(
            msg_id=next_baseline_message_id(self.process_id),
            sender=self.process_id,
            vector=tuple(self._vector),
            payload=payload,
        )
        self._record_send(message.msg_id)
        self.sent_count += 1
        self._broadcast(
            message,
            overhead_bytes=message.overhead_bytes(),
            payload_bytes=estimate_payload_bytes(payload),
        )
        self._accept_causally(message)
        return message.msg_id

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: object) -> None:
        if isinstance(payload, _CbcastMessage):
            self._causal_queue.append(payload)
            self._drain_causal_queue()
        elif isinstance(payload, _AbcastOrder):
            self._orders[payload.msg_id] = payload.sequence
            self._drain_total_order()
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected ISIS payload {payload!r}")

    def _causally_deliverable(self, message: _CbcastMessage) -> bool:
        sender_position = self._index[message.sender]
        for position, entry in enumerate(message.vector):
            if position == sender_position:
                if entry != self._vector[position] + 1:
                    return False
            elif entry > self._vector[position]:
                return False
        return True

    def _drain_causal_queue(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for message in list(self._causal_queue):
                if message.sender == self.process_id:
                    self._causal_queue.remove(message)
                    progressed = True
                    continue
                if self._causally_deliverable(message):
                    self._causal_queue.remove(message)
                    sender_position = self._index[message.sender]
                    self._vector[sender_position] = message.vector[sender_position]
                    self._accept_causally(message)
                    progressed = True

    def _accept_causally(self, message: _CbcastMessage) -> None:
        """A message passed the CBCAST condition; hand it to ABCAST."""
        self._awaiting_order[message.msg_id] = message
        if self.process_id == self.sequencer:
            self._sequencer_counter += 1
            order = _AbcastOrder(msg_id=message.msg_id, sequence=self._sequencer_counter)
            self._broadcast(order, overhead_bytes=order.overhead_bytes())
            self._orders[message.msg_id] = order.sequence
        self._drain_total_order()

    def _drain_total_order(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for msg_id, sequence in sorted(self._orders.items(), key=lambda item: item[1]):
                if sequence != self._next_expected_sequence:
                    continue
                message = self._awaiting_order.get(msg_id)
                if message is None:
                    break
                del self._awaiting_order[msg_id]
                del self._orders[msg_id]
                self._next_expected_sequence += 1
                self._deliver(message.msg_id, message.sender, message.payload)
                progressed = True
                break

    def per_message_overhead_bytes(self) -> int:
        """Vector-clock overhead of one multicast at the current group size."""
        return MESSAGE_ID_BYTES + SCALAR_BYTES + TAG_BYTES + len(self.members) * SCALAR_BYTES
