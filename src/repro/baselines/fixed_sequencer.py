"""Plain fixed-sequencer total order (single group) baseline.

"The main idea behind the protocol for single group members has been known
for a long time" (§4.2): members unicast their messages to a fixed
sequencer, the sequencer stamps a global sequence number and multicasts,
and members deliver strictly in sequence-number order.  Newtop's asymmetric
mode reduces to this in a single group; the interesting differences appear
with overlapping groups (Newtop needs no common or coordinating sequencers)
and under sequencer failure (Newtop's membership service handles it), which
the benchmarks exercise via the Newtop implementation itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.base import BaselineProcess, next_baseline_message_id
from repro.core.messages import MESSAGE_ID_BYTES, SCALAR_BYTES, TAG_BYTES, estimate_payload_bytes


@dataclass(frozen=True)
class _SequencerSubmit:
    """A member's submission to the sequencer."""

    msg_id: str
    sender: str
    payload: object

    def overhead_bytes(self) -> int:
        return MESSAGE_ID_BYTES + SCALAR_BYTES + TAG_BYTES


@dataclass(frozen=True)
class _SequencedBroadcast:
    """The sequencer's numbered multicast."""

    msg_id: str
    sender: str
    sequence: int
    payload: object

    def overhead_bytes(self) -> int:
        return MESSAGE_ID_BYTES + 2 * SCALAR_BYTES + TAG_BYTES


class FixedSequencerProcess(BaselineProcess):
    """One member of a classic fixed-sequencer group."""

    protocol_name = "fixed_sequencer"

    def __init__(self, process_id, sim, transport, members, **kwargs) -> None:
        super().__init__(process_id, sim, transport, members, **kwargs)
        self._sequence_counter = 0
        self._next_expected = 1
        self._out_of_order: Dict[int, _SequencedBroadcast] = {}

    @property
    def sequencer(self) -> str:
        """The fixed sequencer (smallest member id)."""
        return self.members[0]

    @property
    def is_sequencer(self) -> bool:
        """Whether this process is the sequencer."""
        return self.process_id == self.sequencer

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def multicast(self, payload: object) -> str:
        """Submit to the sequencer (or sequence directly if we are it)."""
        msg_id = next_baseline_message_id(self.process_id)
        self._record_send(msg_id)
        self.sent_count += 1
        if self.is_sequencer:
            self._sequence_and_broadcast(msg_id, self.process_id, payload)
        else:
            submit = _SequencerSubmit(msg_id=msg_id, sender=self.process_id, payload=payload)
            self._send(
                self.sequencer,
                submit,
                overhead_bytes=submit.overhead_bytes(),
                payload_bytes=estimate_payload_bytes(payload),
            )
        return msg_id

    def _sequence_and_broadcast(self, msg_id: str, sender: str, payload: object) -> None:
        self._sequence_counter += 1
        broadcast = _SequencedBroadcast(
            msg_id=msg_id, sender=sender, sequence=self._sequence_counter, payload=payload
        )
        self._broadcast(
            broadcast,
            overhead_bytes=broadcast.overhead_bytes(),
            payload_bytes=estimate_payload_bytes(payload),
        )
        self._accept(broadcast)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: object) -> None:
        if isinstance(payload, _SequencerSubmit):
            if self.is_sequencer:
                self._sequence_and_broadcast(payload.msg_id, payload.sender, payload.payload)
        elif isinstance(payload, _SequencedBroadcast):
            self._accept(payload)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected fixed-sequencer payload {payload!r}")

    def _accept(self, broadcast: _SequencedBroadcast) -> None:
        self._out_of_order[broadcast.sequence] = broadcast
        while self._next_expected in self._out_of_order:
            message = self._out_of_order.pop(self._next_expected)
            self._next_expected += 1
            self._deliver(message.msg_id, message.sender, message.payload)

    def per_message_overhead_bytes(self) -> int:
        """Protocol bytes per multicast (submission plus numbered broadcast)."""
        return (MESSAGE_ID_BYTES + SCALAR_BYTES + TAG_BYTES) + (
            MESSAGE_ID_BYTES + 2 * SCALAR_BYTES + TAG_BYTES
        )
