"""Classic Lamport total-order multicast with explicit acknowledgements.

The textbook symmetric total-order protocol derived from Lamport's mutual
exclusion algorithm [10]: every multicast is timestamped with the sender's
Lamport clock; every receiver acknowledges every multicast to every member;
a message is delivered once (a) it has the smallest (timestamp, sender)
among undelivered messages and (b) acknowledgements carrying larger
timestamps have been received from every member.

This baseline exists to quantify what Newtop's time-silence design buys:
Newtop needs no per-message acknowledgements at all when traffic is flowing
(messages themselves carry the progress information), whereas the explicit
ack scheme costs ``n*(n-1)`` extra messages per multicast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import BaselineProcess, next_baseline_message_id
from repro.core.messages import MESSAGE_ID_BYTES, SCALAR_BYTES, TAG_BYTES, estimate_payload_bytes


@dataclass(frozen=True)
class _TimestampedMessage:
    """A multicast carrying its sender's Lamport timestamp."""

    msg_id: str
    sender: str
    timestamp: int
    payload: object

    def overhead_bytes(self) -> int:
        return MESSAGE_ID_BYTES + 2 * SCALAR_BYTES + TAG_BYTES


@dataclass(frozen=True)
class _Acknowledgement:
    """An acknowledgement of one multicast, carrying the acker's clock."""

    msg_id: str
    acker: str
    timestamp: int

    def overhead_bytes(self) -> int:
        return MESSAGE_ID_BYTES + 2 * SCALAR_BYTES + TAG_BYTES


class LamportAckProcess(BaselineProcess):
    """One member of a Lamport all-ack total-order group."""

    protocol_name = "lamport_ack"

    def __init__(self, process_id, sim, transport, members, **kwargs) -> None:
        super().__init__(process_id, sim, transport, members, **kwargs)
        self._clock = 0
        #: Undelivered messages by id.
        self._queue: Dict[str, _TimestampedMessage] = {}
        #: Ackers seen per message id.
        self._acks: Dict[str, set] = {}
        #: Largest timestamp seen from each member (message or ack).
        self._latest_from: Dict[str, int] = {member: 0 for member in self.members}
        self.ack_messages_sent = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def multicast(self, payload: object) -> str:
        """Timestamp and multicast the payload; ack it locally."""
        self._clock += 1
        message = _TimestampedMessage(
            msg_id=next_baseline_message_id(self.process_id),
            sender=self.process_id,
            timestamp=self._clock,
            payload=payload,
        )
        self._record_send(message.msg_id)
        self.sent_count += 1
        self._broadcast(
            message,
            overhead_bytes=message.overhead_bytes(),
            payload_bytes=estimate_payload_bytes(payload),
        )
        self._accept(message)
        return message.msg_id

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: object) -> None:
        if isinstance(payload, _TimestampedMessage):
            self._clock = max(self._clock, payload.timestamp)
            self._accept(payload)
            self._send_ack(payload)
        elif isinstance(payload, _Acknowledgement):
            self._clock = max(self._clock, payload.timestamp)
            self._acks.setdefault(payload.msg_id, set()).add(payload.acker)
            self._latest_from[payload.acker] = max(
                self._latest_from.get(payload.acker, 0), payload.timestamp
            )
            self._drain()
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected Lamport-ack payload {payload!r}")

    def _accept(self, message: _TimestampedMessage) -> None:
        self._queue[message.msg_id] = message
        self._acks.setdefault(message.msg_id, set()).add(message.sender)
        self._acks[message.msg_id].add(self.process_id)
        self._latest_from[message.sender] = max(
            self._latest_from.get(message.sender, 0), message.timestamp
        )
        self._drain()

    def _send_ack(self, message: _TimestampedMessage) -> None:
        self._clock += 1
        ack = _Acknowledgement(
            msg_id=message.msg_id, acker=self.process_id, timestamp=self._clock
        )
        self.ack_messages_sent += len(self._other_members())
        self._broadcast(ack, overhead_bytes=ack.overhead_bytes())
        self._latest_from[self.process_id] = self._clock
        self._drain()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliverable(self, message: _TimestampedMessage) -> bool:
        # Every member must have acknowledged the message (or be its
        # sender), and we must have heard something newer than the
        # message's timestamp from every member, so nothing earlier can
        # still arrive.
        if self._acks.get(message.msg_id, set()) != set(self.members):
            return False
        return all(
            self._latest_from.get(member, 0) >= message.timestamp
            for member in self.members
        )

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if not self._queue:
                return
            head = min(self._queue.values(), key=lambda m: (m.timestamp, m.sender, m.msg_id))
            if self._deliverable(head):
                del self._queue[head.msg_id]
                self._acks.pop(head.msg_id, None)
                self._deliver(head.msg_id, head.sender, head.payload)
                progressed = True

    def per_message_overhead_bytes(self) -> int:
        """Protocol bytes per multicast including the fan-out of acks."""
        message_overhead = MESSAGE_ID_BYTES + 2 * SCALAR_BYTES + TAG_BYTES
        ack_overhead = MESSAGE_ID_BYTES + 2 * SCALAR_BYTES + TAG_BYTES
        return message_overhead + len(self.members) * ack_overhead
