"""Common scaffolding for the baseline protocols.

Every baseline is a single-group total-order multicast protocol exposing
the same minimal surface:

* ``multicast(payload) -> message id``
* ``delivered`` -- payload/message records in local delivery order
* ``protocol_bytes_sent`` -- protocol-overhead bytes this process has put
  on the wire (the quantity compared in experiment E7)

so the benchmark harness can treat Newtop and every baseline uniformly.
A set of identical baseline processes is wired onto one simulated network
by :class:`repro.api.Session` with the matching baseline stack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.net.simulator import Simulator
from repro.net.trace import DELIVER, SEND, TraceRecorder
from repro.net.transport import Endpoint, Transport, TransportMessage

_baseline_message_counter = itertools.count(1)


def next_baseline_message_id(sender: str) -> str:
    """Globally unique message id for baseline protocols."""
    return f"{sender}~{next(_baseline_message_counter)}"


@dataclass
class BaselineDelivery:
    """One delivery made by a baseline process."""

    msg_id: str
    sender: str
    payload: object
    time: float


class BaselineProcess:
    """Base class for single-group baseline protocol processes."""

    #: Name used in benchmark tables; subclasses override.
    protocol_name = "baseline"

    def __init__(
        self,
        process_id: str,
        sim: Simulator,
        transport: Transport,
        members: Sequence[str],
        *,
        group_id: str = "g",
        channel: str = "baseline",
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.process_id = process_id
        self.sim = sim
        self.members = tuple(sorted(members))
        #: Logical group this instance orders messages for.  One transport
        #: endpoint can host several instances (one per group) as long as
        #: each uses a distinct ``channel`` -- how :class:`repro.api`'s
        #: baseline stacks lift these single-group protocols to the
        #: multi-group scenarios they are compared under.
        self.group_id = group_id
        self.channel = channel
        self.recorder = recorder
        self.crashed = False
        self.endpoint: Endpoint = transport.endpoint(process_id)
        self.endpoint.register_handler(channel, self._on_transport_message)
        self.delivered: List[BaselineDelivery] = []
        self.sent_count = 0
        self.protocol_bytes_sent = 0
        self.payload_bytes_sent = 0

    # ------------------------------------------------------------------
    # Interface used by benchmarks
    # ------------------------------------------------------------------
    def multicast(self, payload: object) -> str:
        """Disseminate ``payload`` to the group; returns the message id."""
        raise NotImplementedError

    def delivered_payloads(self) -> List[object]:
        """Payloads delivered so far, in local delivery order."""
        return [delivery.payload for delivery in self.delivered]

    def delivered_ids(self) -> List[str]:
        """Message ids delivered so far, in local delivery order."""
        return [delivery.msg_id for delivery in self.delivered]

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def _other_members(self) -> List[str]:
        return [member for member in self.members if member != self.process_id]

    def _send(self, dst: str, payload: object, overhead_bytes: int, payload_bytes: int = 0) -> None:
        self.protocol_bytes_sent += overhead_bytes
        self.payload_bytes_sent += payload_bytes
        self.endpoint.send(
            dst, payload, channel=self.channel, size_bytes=overhead_bytes + payload_bytes
        )

    def _broadcast(self, payload: object, overhead_bytes: int, payload_bytes: int = 0) -> None:
        for member in self._other_members():
            self._send(member, payload, overhead_bytes, payload_bytes)

    def _record_send(self, msg_id: str) -> None:
        """Record the application-level send.

        Subclasses call this as soon as the message id exists, *before*
        disseminating or self-delivering, so the trace stream stays
        causally coherent (a protocol that synchronously delivers its own
        multicast must not record that delivery ahead of the send).
        """
        if self.recorder is not None:
            self.recorder.record(
                self.sim.now,
                SEND,
                self.process_id,
                group=self.group_id,
                message_id=msg_id,
                sender=self.process_id,
            )

    def _deliver(self, msg_id: str, sender: str, payload: object) -> None:
        self.delivered.append(
            BaselineDelivery(msg_id=msg_id, sender=sender, payload=payload, time=self.sim.now)
        )
        if self.recorder is not None:
            self.recorder.record(
                self.sim.now,
                DELIVER,
                self.process_id,
                group=self.group_id,
                message_id=msg_id,
                sender=sender,
            )

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop this instance (and the whole node's endpoint)."""
        self.crashed = True
        self.endpoint.crash()

    # ------------------------------------------------------------------
    # Transport ingress
    # ------------------------------------------------------------------
    def _on_transport_message(self, tmsg: TransportMessage) -> None:
        if self.crashed:
            return
        self.on_message(tmsg.src, tmsg.payload)

    def on_message(self, src: str, payload: object) -> None:
        """Handle one protocol message from ``src`` (subclass hook)."""
        raise NotImplementedError

