"""Baseline protocols Newtop is compared against in §6 of the paper.

Each baseline is a small, self-contained protocol implementation running on
the same simulated substrate (:mod:`repro.net`) as Newtop, so the benchmark
harness can compare message overhead, message counts and delivery latency
under identical network conditions:

* :mod:`repro.baselines.isis` -- ISIS-style causal multicast with vector
  clocks plus a sequencer for total order (CBCAST/ABCAST [4]).
* :mod:`repro.baselines.psync` -- Psync/Consul-style context-graph
  multicast: messages carry their direct causal predecessors [15, 17].
* :mod:`repro.baselines.lamport_ack` -- the classic Lamport total-order
  protocol with explicit acknowledgements from every member.
* :mod:`repro.baselines.fixed_sequencer` -- a plain single-group fixed
  sequencer (the textbook asymmetric protocol Newtop generalises).
* :mod:`repro.baselines.propagation_graph` -- Garcia-Molina & Spauster
  style propagation-graph ordering for overlapping groups [9].
* :mod:`repro.baselines.primary_partition` -- the primary-partition
  membership policy [14, 18] Newtop's partitionable membership is
  contrasted with.
"""

from repro.baselines.base import BaselineProcess
from repro.baselines.fixed_sequencer import FixedSequencerProcess
from repro.baselines.isis import IsisProcess
from repro.baselines.lamport_ack import LamportAckProcess
from repro.baselines.propagation_graph import PropagationGraphNetwork
from repro.baselines.primary_partition import PrimaryPartitionMembership
from repro.baselines.psync import PsyncProcess

__all__ = [
    "BaselineProcess",
    "FixedSequencerProcess",
    "IsisProcess",
    "LamportAckProcess",
    "PrimaryPartitionMembership",
    "PropagationGraphNetwork",
    "PsyncProcess",
]
