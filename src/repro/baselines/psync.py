"""Psync-style context-graph multicast baseline.

Models the mechanism of Psync / Consul [15, 17] (and the Trans/Total family
[12]) that §6 contrasts with Newtop: every multicast explicitly names its
*direct causal predecessors*, and receivers maintain the resulting directed
acyclic *context graph*, delivering a message only once its predecessors
have been delivered.  This gives causal (partial-order) delivery, which is
what Psync itself provides; the total-order conversion layered on top by
Consul/Total is not reproduced here because the comparison Newtop's paper
draws (per-message overhead and graph bookkeeping for overlapping groups)
is about the context-graph mechanism, not the conversion.  Deliveries
within one process follow a deterministic wave rule over the graph.

What the benchmark measures against Newtop:

* per-message overhead: a predecessor-id list that grows with the number of
  concurrent senders (vs Newtop's constant four scalars), and
* the bookkeeping cost of maintaining the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import BaselineProcess, next_baseline_message_id
from repro.core.messages import MESSAGE_ID_BYTES, SCALAR_BYTES, TAG_BYTES, estimate_payload_bytes


@dataclass(frozen=True)
class _ContextMessage:
    """A multicast carrying its direct predecessors in the context graph."""

    msg_id: str
    sender: str
    predecessors: Tuple[str, ...]
    payload: object

    def overhead_bytes(self) -> int:
        return (
            MESSAGE_ID_BYTES
            + SCALAR_BYTES
            + TAG_BYTES
            + len(self.predecessors) * MESSAGE_ID_BYTES
        )


class PsyncProcess(BaselineProcess):
    """One member of a Psync-style context-graph group."""

    protocol_name = "psync"

    def __init__(self, process_id, sim, transport, members, **kwargs) -> None:
        super().__init__(process_id, sim, transport, members, **kwargs)
        #: All messages seen (delivered or pending), by id.
        self._known: Dict[str, _ContextMessage] = {}
        #: Messages received but whose predecessors are not all delivered.
        self._pending: Dict[str, _ContextMessage] = {}
        #: Ids already delivered.
        self._delivered_ids: Set[str] = set()
        #: Current leaves of the local context graph: the messages a new
        #: multicast from this process will name as predecessors.
        self._leaves: Set[str] = set()
        #: Generation number per delivered message (longest path from a
        #: root), used for the deterministic total-order wave.
        self._generation: Dict[str, int] = {}
        #: Messages whose predecessors are delivered, awaiting the wave rule.
        self._orderable: List[_ContextMessage] = []
        self.max_predecessor_list = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def multicast(self, payload: object) -> str:
        """Multicast the payload, naming the current graph leaves."""
        predecessors = tuple(sorted(self._leaves))
        message = _ContextMessage(
            msg_id=next_baseline_message_id(self.process_id),
            sender=self.process_id,
            predecessors=predecessors,
            payload=payload,
        )
        self._record_send(message.msg_id)
        self.max_predecessor_list = max(self.max_predecessor_list, len(predecessors))
        self.sent_count += 1
        self._broadcast(
            message,
            overhead_bytes=message.overhead_bytes(),
            payload_bytes=estimate_payload_bytes(payload),
        )
        self._ingest(message)
        return message.msg_id

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: object) -> None:
        if not isinstance(payload, _ContextMessage):  # pragma: no cover - defensive
            raise TypeError(f"unexpected Psync payload {payload!r}")
        self._ingest(payload)

    def _ingest(self, message: _ContextMessage) -> None:
        if message.msg_id in self._known:
            return
        self._known[message.msg_id] = message
        self._pending[message.msg_id] = message
        self._drain()

    def _predecessors_delivered(self, message: _ContextMessage) -> bool:
        return all(predecessor in self._delivered_ids for predecessor in message.predecessors)

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for message in list(self._pending.values()):
                if self._predecessors_delivered(message):
                    del self._pending[message.msg_id]
                    self._orderable.append(message)
                    progressed = True
            progressed = self._deliver_wave() or progressed

    def _deliver_wave(self) -> bool:
        """Deliver orderable messages in (generation, sender, id) order.

        Generation = 1 + max generation of predecessors; messages of the
        same generation are ordered by sender id then message id, which is
        the same deterministic rule at every process.
        """
        if not self._orderable:
            return False
        def wave_key(message: _ContextMessage) -> Tuple[int, str, str]:
            generation = 1 + max(
                (self._generation.get(predecessor, 0) for predecessor in message.predecessors),
                default=0,
            )
            return (generation, message.sender, message.msg_id)

        self._orderable.sort(key=wave_key)
        delivered_any = False
        while self._orderable:
            message = self._orderable.pop(0)
            generation = wave_key(message)[0]
            self._generation[message.msg_id] = generation
            self._delivered_ids.add(message.msg_id)
            # The new message covers its predecessors, becoming a leaf.
            self._leaves -= set(message.predecessors)
            self._leaves.add(message.msg_id)
            self._deliver(message.msg_id, message.sender, message.payload)
            delivered_any = True
        return delivered_any

    def per_message_overhead_bytes(self) -> int:
        """Overhead of one multicast with the currently observed leaf count."""
        predecessor_count = max(1, len(self._leaves))
        return (
            MESSAGE_ID_BYTES
            + SCALAR_BYTES
            + TAG_BYTES
            + predecessor_count * MESSAGE_ID_BYTES
        )
