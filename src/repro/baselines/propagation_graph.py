"""Propagation-graph multicast for overlapping groups (Garcia-Molina &
Spauster style) baseline.

§4.2 of the Newtop paper contrasts its asymmetric protocol with the ordered
multicast of Garcia-Molina & Spauster [9], which handles overlapping groups
by routing every multicast through a *propagation graph* (a forest): each
group is assigned a starting node (a common ancestor of all its members),
messages are sent to that node, and they propagate down the tree so that
messages destined for the same process arrive along a single ordered path.
The cost Newtop avoids is structural: overlapping groups must share parts
of the tree, every message travels extra hops through intermediate nodes,
and the tree must be rebuilt when membership changes.

The implementation here builds the standard construction: groups are sorted
by size, each group's starting node is the root of the subtree containing
all its members (creating a fresh chain node when none exists), and
messages traverse the tree edges in FIFO order.  It supports multiple
overlapping groups -- that is the whole point -- and reports per-message
hop counts and overhead so experiment E13 can compare it with Newtop's
coordination-free sequencers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.base import BaselineDelivery, next_baseline_message_id
from repro.core.messages import MESSAGE_ID_BYTES, SCALAR_BYTES, TAG_BYTES, estimate_payload_bytes
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.net.simulator import Simulator
from repro.net.transport import Transport, TransportMessage


@dataclass(frozen=True)
class _PropagatedMessage:
    """A multicast travelling down the propagation graph."""

    msg_id: str
    origin: str
    group: str
    members: Tuple[str, ...]
    payload: object
    hops: int = 0

    def overhead_bytes(self) -> int:
        return (
            MESSAGE_ID_BYTES
            + 2 * SCALAR_BYTES
            + TAG_BYTES
            + len(self.members) * SCALAR_BYTES
        )


class _GraphNode:
    """One process in the propagation graph."""

    def __init__(self, network: "PropagationGraphNetwork", process_id: str) -> None:
        self.network = network
        self.process_id = process_id
        self.children: List[str] = []
        self.delivered: List[BaselineDelivery] = []
        self.endpoint = network.transport.endpoint(process_id)
        self.endpoint.register_handler("propagation", self._on_transport_message)
        self.protocol_bytes_sent = 0

    def _on_transport_message(self, tmsg: TransportMessage) -> None:
        message = tmsg.payload
        if not isinstance(message, _PropagatedMessage):  # pragma: no cover - defensive
            raise TypeError(f"unexpected propagation payload {message!r}")
        self.handle(message)

    def handle(self, message: _PropagatedMessage) -> None:
        """Deliver locally if we are a destination, then forward downwards."""
        if self.process_id in message.members:
            self.delivered.append(
                BaselineDelivery(
                    msg_id=message.msg_id,
                    sender=message.origin,
                    payload=message.payload,
                    time=self.network.sim.now,
                )
            )
        forwarded = _PropagatedMessage(
            msg_id=message.msg_id,
            origin=message.origin,
            group=message.group,
            members=message.members,
            payload=message.payload,
            hops=message.hops + 1,
        )
        for child in self.children:
            if self.network.subtree_intersects(child, set(message.members)):
                size = forwarded.overhead_bytes() + estimate_payload_bytes(message.payload)
                self.protocol_bytes_sent += forwarded.overhead_bytes()
                self.endpoint.send(child, forwarded, channel="propagation", size_bytes=size)
                self.network.total_hops += 1


class PropagationGraphNetwork:
    """A propagation forest over a set of processes and overlapping groups."""

    def __init__(
        self,
        groups: Dict[str, Sequence[str]],
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> None:
        self.sim = Simulator(seed=seed)
        network_config = NetworkConfig()
        if latency_model is not None:
            network_config.latency_model = latency_model
        self.network = Network(self.sim, network_config)
        self.transport = Transport(self.network)
        self.groups: Dict[str, Tuple[str, ...]] = {
            group: tuple(sorted(members)) for group, members in groups.items()
        }
        self.nodes: Dict[str, _GraphNode] = {}
        #: Root (starting node) per group.
        self.start_node: Dict[str, str] = {}
        #: Parent pointers of the forest.
        self.parent: Dict[str, Optional[str]] = {}
        self.total_hops = 0
        self._build_graph()

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _node(self, process_id: str) -> _GraphNode:
        if process_id not in self.nodes:
            self.nodes[process_id] = _GraphNode(self, process_id)
            self.parent.setdefault(process_id, None)
        return self.nodes[process_id]

    def _root_of(self, process_id: str) -> str:
        current = process_id
        while self.parent.get(current) is not None:
            current = self.parent[current]
        return current

    def _build_graph(self) -> None:
        """Groups are processed largest-first; each group's members are
        hung under a single starting node, merging trees where groups
        overlap (the classic Garcia-Molina & Spauster construction)."""
        ordered_groups = sorted(
            self.groups.items(), key=lambda item: (-len(item[1]), item[0])
        )
        for group, members in ordered_groups:
            for member in members:
                self._node(member)
            roots = []
            for member in members:
                root = self._root_of(member)
                if root not in roots:
                    roots.append(root)
            start = roots[0]
            for other_root in roots[1:]:
                self.parent[other_root] = start
                self._node(start).children.append(other_root)
            self.start_node[group] = self._root_of(start)

    def subtree_intersects(self, node_id: str, members: Set[str]) -> bool:
        """Whether the subtree rooted at ``node_id`` contains any member."""
        if node_id in members:
            return True
        return any(
            self.subtree_intersects(child, members)
            for child in self._node(node_id).children
        )

    # ------------------------------------------------------------------
    # Multicasting
    # ------------------------------------------------------------------
    def multicast(self, origin: str, group: str, payload: object) -> str:
        """Send a multicast in ``group``: route it to the group's starting
        node, from which it propagates down the forest."""
        members = self.groups[group]
        message = _PropagatedMessage(
            msg_id=next_baseline_message_id(origin),
            origin=origin,
            group=group,
            members=members,
            payload=payload,
        )
        start = self.start_node[group]
        origin_node = self._node(origin)
        if origin == start:
            origin_node.handle(message)
        else:
            size = message.overhead_bytes() + estimate_payload_bytes(payload)
            origin_node.protocol_bytes_sent += message.overhead_bytes()
            origin_node.endpoint.send(start, message, channel="propagation", size_bytes=size)
            self.total_hops += 1
        return message.msg_id

    # ------------------------------------------------------------------
    # Running and inspection
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        """Advance simulated time by ``duration``."""
        self.sim.run(until=self.sim.now + duration)

    def delivered_ids(self, process_id: str) -> List[str]:
        """Message ids delivered at ``process_id`` in arrival order."""
        return [delivery.msg_id for delivery in self._node(process_id).delivered]

    def total_protocol_bytes(self) -> int:
        """Protocol bytes transmitted across the whole forest."""
        return sum(node.protocol_bytes_sent for node in self.nodes.values())

    def depth_of(self, process_id: str) -> int:
        """Distance from ``process_id`` to the root of its tree."""
        depth = 0
        current = process_id
        while self.parent.get(current) is not None:
            current = self.parent[current]
            depth += 1
        return depth
