"""Event trace recording.

Every protocol implementation in this repository (Newtop and the baselines)
reports its externally observable events -- sends, receives, deliveries,
view installations, suspicions -- to a :class:`TraceRecorder`.  The trace is
the single source of truth used by:

* the property checkers in :mod:`repro.analysis.checkers`, which assert the
  paper's guarantees (MD1-MD5', VC1-VC3) over whole executions, and
* the benchmark harness, which derives latency, message-count and overhead
  series from it.

Keeping verification outside the protocol code means the checks cannot be
accidentally weakened by the implementation they are checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: Event kinds recorded by protocol implementations.
SEND = "send"
RECEIVE = "receive"
DELIVER = "deliver"
NULL_SEND = "null_send"
NULL_DELIVER = "null_deliver"
VIEW_INSTALL = "view_install"
SUSPECT = "suspect"
REFUTE = "refute"
CONFIRM = "confirm"
CRASH = "crash"
DEPART = "depart"
GROUP_FORMED = "group_formed"
BLOCKED_SEND = "blocked_send"
UNBLOCKED_SEND = "unblocked_send"

EVENT_KINDS = frozenset(
    {
        SEND,
        RECEIVE,
        DELIVER,
        NULL_SEND,
        NULL_DELIVER,
        VIEW_INSTALL,
        SUSPECT,
        REFUTE,
        CONFIRM,
        CRASH,
        DEPART,
        GROUP_FORMED,
        BLOCKED_SEND,
        UNBLOCKED_SEND,
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    time:
        Simulated time of the event.
    kind:
        One of the module-level event-kind constants.
    process:
        Identifier of the process at which the event occurred.
    group:
        Group identifier the event refers to (may be ``None`` for
        process-level events such as crashes).
    message_id:
        Globally unique message identifier for message events.
    sender:
        Original sender for message events.
    clock:
        The message number ``m.c`` for message events.
    details:
        Free-form extra data (view composition, suspicion target, ...).
    seq:
        Per-trace monotonically increasing sequence number; breaks ties
        between events at the same simulated time and records the physical
        order in which the recorder saw them.
    """

    time: float
    kind: str
    process: str
    group: Optional[str] = None
    message_id: Optional[str] = None
    sender: Optional[str] = None
    clock: Optional[int] = None
    details: Tuple[Tuple[str, Any], ...] = ()
    seq: int = 0

    def detail(self, key: str, default: Any = None) -> Any:
        """Look up a value recorded in :attr:`details`."""
        for item_key, value in self.details:
            if item_key == key:
                return value
        return default


class TraceRecorder:
    """Collects :class:`TraceEvent` objects during a simulation."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._seq = 0

    def record(
        self,
        time: float,
        kind: str,
        process: str,
        group: Optional[str] = None,
        message_id: Optional[str] = None,
        sender: Optional[str] = None,
        clock: Optional[int] = None,
        **details: Any,
    ) -> TraceEvent:
        """Record one event and return it."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        event = TraceEvent(
            time=time,
            kind=kind,
            process=process,
            group=group,
            message_id=message_id,
            sender=sender,
            clock=clock,
            details=tuple(sorted(details.items())),
            seq=self._seq,
        )
        self._seq += 1
        self._events.append(event)
        return event

    def trace(self) -> "EventTrace":
        """Return an immutable queryable view over the recorded events."""
        return EventTrace(list(self._events))

    def __len__(self) -> int:
        return len(self._events)


class EventTrace:
    """Queryable, immutable view over a list of trace events."""

    def __init__(self, events: List[TraceEvent]) -> None:
        self._events = sorted(events, key=lambda event: (event.time, event.seq))

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(
        self,
        kind: Optional[str] = None,
        process: Optional[str] = None,
        group: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events filtered by any combination of kind, process and group."""
        result = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if process is not None and event.process != process:
                continue
            if group is not None and event.group != group:
                continue
            result.append(event)
        return result

    # ------------------------------------------------------------------
    # Derived views used by checkers and benchmarks
    # ------------------------------------------------------------------
    def processes(self) -> List[str]:
        """All process identifiers appearing in the trace."""
        return sorted({event.process for event in self._events})

    def groups(self) -> List[str]:
        """All group identifiers appearing in the trace."""
        return sorted({event.group for event in self._events if event.group is not None})

    def delivered_sequence(
        self, process: str, group: Optional[str] = None, include_nulls: bool = False
    ) -> List[TraceEvent]:
        """Delivery events at ``process`` in delivery order.

        With ``group`` given, restricted to that group's messages; the order
        is still the process-local delivery order (which, for multi-group
        processes, interleaves groups).
        """
        kinds = {DELIVER}
        if include_nulls:
            kinds.add(NULL_DELIVER)
        result = []
        for event in self._events:
            if event.process != process or event.kind not in kinds:
                continue
            if group is not None and event.group != group:
                continue
            result.append(event)
        return result

    def delivered_ids(self, process: str, group: Optional[str] = None) -> List[str]:
        """Message ids delivered at ``process`` in delivery order."""
        return [
            event.message_id
            for event in self.delivered_sequence(process, group)
            if event.message_id is not None
        ]

    def sends(self, process: Optional[str] = None, group: Optional[str] = None) -> List[TraceEvent]:
        """Application (non-null) send events."""
        return self.events(kind=SEND, process=process, group=group)

    def views_installed(self, process: str, group: str) -> List[TraceEvent]:
        """View-installation events at ``process`` for ``group``, in order."""
        return self.events(kind=VIEW_INSTALL, process=process, group=group)

    def view_sequence(self, process: str, group: str) -> List[frozenset]:
        """The sequence of views (as frozensets of member ids) installed."""
        return [
            frozenset(event.detail("members", ()))
            for event in self.views_installed(process, group)
        ]

    def crashed_processes(self) -> List[str]:
        """Processes that recorded a crash event."""
        return sorted({event.process for event in self.events(kind=CRASH)})

    def delivery_latencies(self, group: Optional[str] = None) -> List[float]:
        """Per-delivery latency: delivery time minus original send time.

        Only application messages are considered; every delivery of a
        message contributes one sample (so a multicast to `n` members
        contributes up to `n` samples).
        """
        send_times: Dict[str, float] = {}
        for event in self.events(kind=SEND, group=group):
            if event.message_id is not None:
                send_times[event.message_id] = event.time
        latencies = []
        for event in self.events(kind=DELIVER, group=group):
            if event.message_id in send_times:
                latencies.append(event.time - send_times[event.message_id])
        return latencies

    def happened_before_pairs(self, group: Optional[str] = None) -> List[Tuple[str, str]]:
        """Pairs ``(m, m')`` of message ids with ``send(m) -> send(m')``.

        The happened-before relation is reconstructed per the paper: m -> m'
        if the same process sent m before m', or if some process delivered m
        before sending m', closed transitively.  Used by the causal-order
        checkers; quadratic in the number of messages, fine at test scale.
        """
        per_process: Dict[str, List[TraceEvent]] = {}
        for event in self._events:
            if event.kind in (SEND, DELIVER):
                if group is not None and event.group != group:
                    continue
                per_process.setdefault(event.process, []).append(event)

        direct: Dict[str, set] = {}
        for events in per_process.values():
            seen_messages: List[str] = []
            for event in events:
                if event.message_id is None:
                    continue
                if event.kind == SEND:
                    for earlier in seen_messages:
                        if earlier != event.message_id:
                            direct.setdefault(earlier, set()).add(event.message_id)
                    seen_messages.append(event.message_id)
                else:  # DELIVER
                    seen_messages.append(event.message_id)

        # Transitive closure (messages at test scale are few enough).
        closed: Dict[str, set] = {key: set(values) for key, values in direct.items()}
        changed = True
        while changed:
            changed = False
            for key in list(closed):
                additions = set()
                for successor in closed[key]:
                    additions |= closed.get(successor, set())
                if not additions.issubset(closed[key]):
                    closed[key] |= additions
                    changed = True
        pairs = []
        for earlier, laters in closed.items():
            for later in laters:
                pairs.append((earlier, later))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventTrace(events={len(self._events)})"
