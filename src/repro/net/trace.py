"""Event trace recording and the pluggable trace-sink architecture.

Every protocol implementation in this repository (Newtop and the baselines)
reports its externally observable events -- sends, receives, deliveries,
view installations, suspicions -- to a :class:`TraceRecorder`.  The trace is
the single source of truth used by:

* the property checkers in :mod:`repro.analysis.checkers` (post-hoc) and
  :mod:`repro.analysis.online` (streaming), which assert the paper's
  guarantees (MD1-MD5', VC1-VC3) over executions, and
* the benchmark harness, which derives latency, message-count and overhead
  series from it.

Keeping verification outside the protocol code means the checks cannot be
accidentally weakened by the implementation they are checking.

Sink API
--------
The recorder is an observer hub: every recorded event is pushed, in record
order, to any number of :class:`TraceSink` objects.  A sink implements two
methods::

    class TraceSink:
        def on_event(self, event: TraceEvent) -> None: ...  # one event
        def close(self) -> None: ...                        # end of run

Provided sinks:

* :class:`MemorySink` -- keeps the full event list and materializes an
  :class:`EventTrace` on demand (the recorder installs one by default so
  :meth:`TraceRecorder.trace` keeps working);
* :class:`JsonlSink` -- writes one JSON object per event to a file
  (truncating any existing content), for offline tooling and cross-run
  diffing;
* :class:`MetricsSink` -- a rolling aggregator (event/kind counts, per-group
  delivery counts, streaming latency stats) that never stores events;
* :class:`NullSink` -- discards everything (useful to measure recording
  overhead in isolation);
* :class:`repro.analysis.online.OnlineCheckSuite` -- streaming property
  checkers with amortized O(1)-O(log n) work per event.

Passing ``keep_events=False`` to :class:`TraceRecorder` drops the default
memory sink: events are only streamed to the registered sinks and the full
trace is never materialized, which is what lets the scenario engine verify
1000-process runs online (``analysis="online"``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, IO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.stats import LatencyReservoir

#: Event kinds recorded by protocol implementations.
SEND = "send"
RECEIVE = "receive"
DELIVER = "deliver"
NULL_SEND = "null_send"
NULL_DELIVER = "null_deliver"
VIEW_INSTALL = "view_install"
SUSPECT = "suspect"
REFUTE = "refute"
CONFIRM = "confirm"
CRASH = "crash"
DEPART = "depart"
GROUP_FORMED = "group_formed"
BLOCKED_SEND = "blocked_send"
UNBLOCKED_SEND = "unblocked_send"
#: Application-level events recorded by :mod:`repro.apps.kv`: one command
#: applied by a shard replica, and one read served from a replica's local
#: state.  Protocol checkers ignore them; the KV consistency oracle
#: (:class:`repro.apps.kv.oracle.KVOracle`) consumes them online.
KV_APPLY = "kv_apply"
KV_READ = "kv_read"

EVENT_KINDS = frozenset(
    {
        SEND,
        RECEIVE,
        DELIVER,
        NULL_SEND,
        NULL_DELIVER,
        VIEW_INSTALL,
        SUSPECT,
        REFUTE,
        CONFIRM,
        CRASH,
        DEPART,
        GROUP_FORMED,
        BLOCKED_SEND,
        UNBLOCKED_SEND,
        KV_APPLY,
        KV_READ,
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    time:
        Simulated time of the event.
    kind:
        One of the module-level event-kind constants.
    process:
        Identifier of the process at which the event occurred.
    group:
        Group identifier the event refers to (may be ``None`` for
        process-level events such as crashes).
    message_id:
        Globally unique message identifier for message events.
    sender:
        Original sender for message events.
    clock:
        The message number ``m.c`` for message events.
    details:
        Free-form extra data (view composition, suspicion target, ...).
    seq:
        Per-trace monotonically increasing sequence number; breaks ties
        between events at the same simulated time and records the physical
        order in which the recorder saw them.
    """

    time: float
    kind: str
    process: str
    group: Optional[str] = None
    message_id: Optional[str] = None
    sender: Optional[str] = None
    clock: Optional[int] = None
    details: Tuple[Tuple[str, Any], ...] = ()
    seq: int = 0

    def detail(self, key: str, default: Any = None) -> Any:
        """Look up a value recorded in :attr:`details`."""
        for item_key, value in self.details:
            if item_key == key:
                return value
        return default


class TraceSink:
    """Observer interface for streaming trace consumption.

    Subclasses override :meth:`on_event`; :meth:`close` is called when the
    producer is done (end of a scenario run, recorder shutdown).  Sinks must
    not mutate the events they receive.
    """

    def on_event(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/teardown hook; the default is a no-op."""


class NullSink(TraceSink):
    """Discards every event (measures bare recording overhead)."""

    def on_event(self, event: TraceEvent) -> None:
        pass


class MemorySink(TraceSink):
    """Keeps every event in memory; the traditional full-trace mode."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)

    def trace(self) -> "EventTrace":
        """Materialize an immutable queryable view over the stored events."""
        return EventTrace(list(self.events))

    def __len__(self) -> int:
        return len(self.events)


def _json_default(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


class JsonlSink(TraceSink):
    """Writes one JSON object per event to a file (JSON Lines).

    Accepts either a path (opened for writing -- truncating any existing
    file -- and closed by the sink) or an open text file-like object (left
    open on :meth:`close`, only flushed).
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.events_written = 0

    def on_event(self, event: TraceEvent) -> None:
        payload = {
            "time": event.time,
            "kind": event.kind,
            "process": event.process,
            "seq": event.seq,
        }
        if event.group is not None:
            payload["group"] = event.group
        if event.message_id is not None:
            payload["message_id"] = event.message_id
        if event.sender is not None:
            payload["sender"] = event.sender
        if event.clock is not None:
            payload["clock"] = event.clock
        if event.details:
            payload["details"] = dict(event.details)
        self._file.write(
            json.dumps(payload, separators=(",", ":"), default=_json_default) + "\n"
        )
        self.events_written += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()


class MetricsSink(TraceSink):
    """Rolling aggregator: never stores events, only summaries.

    Tracks event counts by kind, per-group application delivery counts, and
    streaming delivery-latency statistics: exact count/mean/min/max (with a
    Welford variance term) plus a bounded deterministic
    :class:`~repro.stats.LatencyReservoir` for percentiles.  The reservoir
    is what a sharded batch merges -- carrying it (rather than the moment
    summary) keeps cross-shard percentiles exact whenever the shard pools
    are exact.  Latency samples pair each delivery with the *first* send of
    its message id -- re-sends under the original id (asymmetric failover)
    must not reset the clock.  Memory is O(kinds + groups + distinct
    message ids + reservoir capacity): the send-time table is what pairs
    deliveries with sends and cannot be evicted (a multicast delivers many
    times), but it never grows with deliveries, nulls or run length.
    """

    def __init__(self) -> None:
        self.events_total = 0
        self.by_kind: Dict[str, int] = {}
        self.deliveries_by_group: Dict[str, int] = {}
        self._first_send_time: Dict[str, float] = {}
        self.latency = LatencyReservoir()
        self._latency_m2 = 0.0

    def on_event(self, event: TraceEvent) -> None:
        self.events_total += 1
        self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
        if event.kind == SEND and event.message_id is not None:
            self._first_send_time.setdefault(event.message_id, event.time)
        elif event.kind == DELIVER:
            if event.group is not None:
                self.deliveries_by_group[event.group] = (
                    self.deliveries_by_group.get(event.group, 0) + 1
                )
            send_time = self._first_send_time.get(event.message_id)
            if send_time is not None:
                sample = event.time - send_time
                delta = sample - self.latency.mean
                self.latency.add(sample)
                self._latency_m2 += delta * (sample - self.latency.mean)

    @property
    def latency_count(self) -> int:
        return self.latency.count

    @property
    def latency_mean(self) -> float:
        return self.latency.mean

    @property
    def latency_min(self) -> float:
        return self.latency.min

    @property
    def latency_max(self) -> float:
        return self.latency.max

    @property
    def latency_variance(self) -> float:
        """Population variance of the latency samples seen so far."""
        if self.latency.count < 2:
            return 0.0
        return self._latency_m2 / self.latency.count

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-shaped summary of everything aggregated so far.

        The ``latency`` block carries the reservoir's p50/p95/p99 alongside
        the exact moments, so consumers (benchmark tables, BENCH JSONs)
        read percentiles straight from here instead of recomputing them
        from raw samples.
        """
        has_latency = self.latency_count > 0
        percentiles = (
            self.latency.summary(percentiles=(50, 95, 99)) if has_latency else {}
        )
        return {
            "events_total": self.events_total,
            "by_kind": dict(self.by_kind),
            "deliveries_by_group": dict(self.deliveries_by_group),
            "latency": {
                "count": self.latency_count,
                "mean": self.latency_mean if has_latency else None,
                "min": self.latency_min if has_latency else None,
                "max": self.latency_max if has_latency else None,
                "variance": self.latency_variance,
                "p50": percentiles.get("p50"),
                "p95": percentiles.get("p95"),
                "p99": percentiles.get("p99"),
            },
        }


class TraceRecorder:
    """Collects :class:`TraceEvent` objects and streams them to sinks.

    By default a :class:`MemorySink` is installed so :meth:`trace` returns
    the full execution trace (the historical behaviour).  With
    ``keep_events=False`` no event is retained: everything is pushed to the
    registered sinks only, and :meth:`trace` raises -- this is the
    streaming/online mode used for runs too large to materialize.

    Fan-out is *isolated* by default (``on_sink_error="detach"``): a sink
    raising from :meth:`TraceSink.on_event` is detached from the recorder
    and the failure recorded in :attr:`sink_errors` -- one broken observer
    must not kill a multi-minute simulation, but it also must not silently
    keep "verifying".  ``on_sink_error="raise"`` restores the strict
    behaviour (the exception propagates to the simulator loop), for tests
    and debugging where a sink bug should be loud.
    """

    def __init__(
        self,
        sinks: Optional[Iterable[TraceSink]] = None,
        keep_events: bool = True,
        on_sink_error: str = "detach",
    ) -> None:
        if on_sink_error not in ("detach", "raise"):
            raise ValueError(
                f"on_sink_error must be 'detach' or 'raise', got {on_sink_error!r}"
            )
        self._memory: Optional[MemorySink] = MemorySink() if keep_events else None
        self._sinks: List[TraceSink] = list(sinks or ())
        self._seq = 0
        self._on_sink_error = on_sink_error
        #: One entry per detached sink: sink type, error string, event seq.
        self.sink_errors: List[Dict[str, Any]] = []
        #: The sink objects removed after raising (inspection/tests).
        self.detached_sinks: List[TraceSink] = []
        #: Optional :class:`repro.obs.profiler.HotPathProfiler`; when set,
        #: the sink fan-out loop is timed as the nested ``sink_fanout``
        #: section.
        self.profiler = None

    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Register a sink; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        """Unregister a previously added sink."""
        self._sinks.remove(sink)

    def record(
        self,
        time: float,
        kind: str,
        process: str,
        group: Optional[str] = None,
        message_id: Optional[str] = None,
        sender: Optional[str] = None,
        clock: Optional[int] = None,
        **details: Any,
    ) -> TraceEvent:
        """Record one event, fan it out to every sink, and return it."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        event = TraceEvent(
            time=time,
            kind=kind,
            process=process,
            group=group,
            message_id=message_id,
            sender=sender,
            clock=clock,
            details=tuple(sorted(details.items())),
            seq=self._seq,
        )
        self._seq += 1
        if self._memory is not None:
            self._memory.on_event(event)
        profiler = self.profiler
        start = perf_counter() if profiler is not None else 0.0
        failed: Optional[List[TraceSink]] = None
        for sink in self._sinks:
            try:
                sink.on_event(event)
            except Exception as exc:
                if self._on_sink_error == "raise":
                    raise
                self.sink_errors.append(
                    {
                        "sink": type(sink).__name__,
                        "error": f"{type(exc).__name__}: {exc}",
                        "at_seq": event.seq,
                        "at_time": event.time,
                    }
                )
                if failed is None:
                    failed = []
                failed.append(sink)
        if failed is not None:
            # Detach outside the loop; the remaining sinks saw the event.
            for sink in failed:
                self._sinks.remove(sink)
                self.detached_sinks.append(sink)
        if profiler is not None:
            profiler.record("sink_fanout", perf_counter() - start)
        return event

    @property
    def events_recorded(self) -> int:
        """Total number of events seen (stored or streamed)."""
        return self._seq

    @property
    def stored_events(self) -> int:
        """Events currently held in memory (0 in streaming mode)."""
        return len(self._memory) if self._memory is not None else 0

    def trace(self) -> "EventTrace":
        """Return an immutable queryable view over the recorded events.

        Raises :class:`RuntimeError` in streaming mode (``keep_events=False``):
        there is no materialized trace by design -- query the sinks instead.
        """
        if self._memory is None:
            raise RuntimeError(
                "this recorder streams to sinks only (keep_events=False); "
                "no materialized trace is available"
            )
        return self._memory.trace()

    def close(self) -> None:
        """Close every registered sink."""
        for sink in self._sinks:
            sink.close()

    def __len__(self) -> int:
        return self._seq


class EventTrace:
    """Queryable, immutable view over a list of trace events.

    Filter results by kind (and kind+process) are indexed lazily, and the
    happened-before relation is memoized per group argument, so repeated
    checker queries cost one scan instead of one scan each.
    """

    def __init__(self, events: List[TraceEvent]) -> None:
        self._events = sorted(events, key=lambda event: (event.time, event.seq))
        self._kind_index: Optional[Dict[str, List[TraceEvent]]] = None
        self._kind_process_index: Dict[str, Dict[str, List[TraceEvent]]] = {}
        self._hb_cache: Dict[Optional[str], List[Tuple[str, str]]] = {}

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def _by_kind(self, kind: str) -> List[TraceEvent]:
        if self._kind_index is None:
            index: Dict[str, List[TraceEvent]] = {}
            for event in self._events:
                index.setdefault(event.kind, []).append(event)
            self._kind_index = index
        return self._kind_index.get(kind, [])

    def _by_kind_and_process(self, kind: str, process: str) -> List[TraceEvent]:
        per_process = self._kind_process_index.get(kind)
        if per_process is None:
            per_process = {}
            for event in self._by_kind(kind):
                per_process.setdefault(event.process, []).append(event)
            self._kind_process_index[kind] = per_process
        return per_process.get(process, [])

    def events(
        self,
        kind: Optional[str] = None,
        process: Optional[str] = None,
        group: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events filtered by any combination of kind, process and group."""
        if kind is not None:
            base = (
                self._by_kind_and_process(kind, process)
                if process is not None
                else self._by_kind(kind)
            )
            if group is None:
                return list(base)
            return [event for event in base if event.group == group]
        result = []
        for event in self._events:
            if process is not None and event.process != process:
                continue
            if group is not None and event.group != group:
                continue
            result.append(event)
        return result

    # ------------------------------------------------------------------
    # Derived views used by checkers and benchmarks
    # ------------------------------------------------------------------
    def processes(self) -> List[str]:
        """All process identifiers appearing in the trace."""
        return sorted({event.process for event in self._events})

    def groups(self) -> List[str]:
        """All group identifiers appearing in the trace."""
        return sorted({event.group for event in self._events if event.group is not None})

    def delivered_sequence(
        self, process: str, group: Optional[str] = None, include_nulls: bool = False
    ) -> List[TraceEvent]:
        """Delivery events at ``process`` in delivery order.

        With ``group`` given, restricted to that group's messages; the order
        is still the process-local delivery order (which, for multi-group
        processes, interleaves groups).
        """
        base = self._by_kind_and_process(DELIVER, process)
        if include_nulls:
            base = sorted(
                base + self._by_kind_and_process(NULL_DELIVER, process),
                key=lambda event: (event.time, event.seq),
            )
        if group is None:
            return list(base)
        return [event for event in base if event.group == group]

    def delivered_ids(self, process: str, group: Optional[str] = None) -> List[str]:
        """Message ids delivered at ``process`` in delivery order."""
        return [
            event.message_id
            for event in self.delivered_sequence(process, group)
            if event.message_id is not None
        ]

    def sends(self, process: Optional[str] = None, group: Optional[str] = None) -> List[TraceEvent]:
        """Application (non-null) send events."""
        return self.events(kind=SEND, process=process, group=group)

    def views_installed(self, process: str, group: str) -> List[TraceEvent]:
        """View-installation events at ``process`` for ``group``, in order."""
        return self.events(kind=VIEW_INSTALL, process=process, group=group)

    def view_sequence(self, process: str, group: str) -> List[frozenset]:
        """The sequence of views (as frozensets of member ids) installed."""
        return [
            frozenset(event.detail("members", ()))
            for event in self.views_installed(process, group)
        ]

    def crashed_processes(self) -> List[str]:
        """Processes that recorded a crash event."""
        return sorted({event.process for event in self.events(kind=CRASH)})

    def delivery_latencies(self, group: Optional[str] = None) -> List[float]:
        """Per-delivery latency: delivery time minus original send time.

        Only application messages are considered; every delivery of a
        message contributes one sample (so a multicast to `n` members
        contributes up to `n` samples).  A message re-sent under its
        original id (asymmetric failover) keeps its *first* send time --
        the latency is measured from the application's initial send, not
        from the retry.
        """
        send_times: Dict[str, float] = {}
        for event in self.events(kind=SEND, group=group):
            if event.message_id is not None:
                send_times.setdefault(event.message_id, event.time)
        latencies = []
        for event in self.events(kind=DELIVER, group=group):
            if event.message_id in send_times:
                latencies.append(event.time - send_times[event.message_id])
        return latencies

    def happened_before_pairs(self, group: Optional[str] = None) -> List[Tuple[str, str]]:
        """Pairs ``(m, m')`` of message ids with ``send(m) -> send(m')``.

        The happened-before relation is reconstructed per the paper: m -> m'
        if the same process sent m before m', or if some process delivered m
        before sending m', closed transitively.  Used by the post-hoc
        causal-order checkers; quadratic in the number of messages, so the
        result is memoized per ``group`` argument (``check_all`` evaluates
        it globally and per group -- each variant is now computed once).
        The streaming checkers in :mod:`repro.analysis.online` avoid the
        closure entirely via vector-clock summaries.
        """
        cached = self._hb_cache.get(group)
        if cached is not None:
            return cached
        per_process: Dict[str, List[TraceEvent]] = {}
        for event in self._events:
            if event.kind in (SEND, DELIVER):
                if group is not None and event.group != group:
                    continue
                per_process.setdefault(event.process, []).append(event)

        direct: Dict[str, set] = {}
        for events in per_process.values():
            seen_messages: List[str] = []
            for event in events:
                if event.message_id is None:
                    continue
                if event.kind == SEND:
                    for earlier in seen_messages:
                        if earlier != event.message_id:
                            direct.setdefault(earlier, set()).add(event.message_id)
                    seen_messages.append(event.message_id)
                else:  # DELIVER
                    seen_messages.append(event.message_id)

        # Transitive closure (messages at test scale are few enough).
        closed: Dict[str, set] = {key: set(values) for key, values in direct.items()}
        changed = True
        while changed:
            changed = False
            for key in list(closed):
                additions = set()
                for successor in closed[key]:
                    additions |= closed.get(successor, set())
                if not additions.issubset(closed[key]):
                    closed[key] |= additions
                    changed = True
        pairs = []
        for earlier, laters in closed.items():
            for later in laters:
                pairs.append((earlier, later))
        self._hb_cache[group] = pairs
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventTrace(events={len(self._events)})"
