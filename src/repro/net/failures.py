"""Declarative fault injection.

Benchmarks and integration tests describe failures as a
:class:`FailureSchedule` -- a list of timed actions -- and hand it to a
:class:`FaultInjector`, which arranges for the actions to happen at the
right simulated times.  Supported actions cover the failure modes the paper
reasons about:

* ``crash(time, node)`` -- crash-stop a process.
* ``crash_during_multicast(time, node, allowed_receivers)`` -- crash a
  process in a way that lets only ``allowed_receivers`` see messages it
  sends from ``time`` onwards, then stops it completely; this is Example 1
  ("Pr crashes during the multicast of m, such that only Ps receives m").
* ``partition(time, components)`` / ``heal(time)`` -- install or remove a
  network partition (Fig. 2, Examples 2 and 3).
* ``drop_between(time, src_nodes, dst_nodes, duration)`` -- drop messages
  between two node sets for a window, modelling transient loss or a
  one-directional outage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from repro.net.network import Network
from repro.net.simulator import Simulator


@dataclass
class _Action:
    """One scheduled fault action."""

    time: float
    kind: str
    node: Optional[str] = None
    components: Optional[List[List[str]]] = None
    allowed_receivers: Optional[Set[str]] = None
    src_nodes: Optional[Set[str]] = None
    dst_nodes: Optional[Set[str]] = None
    duration: Optional[float] = None


@dataclass
class FailureSchedule:
    """A declarative list of fault actions, built with the helper methods."""

    actions: List[_Action] = field(default_factory=list)

    def crash(self, time: float, node: str) -> "FailureSchedule":
        """Crash ``node`` at ``time``."""
        self.actions.append(_Action(time=time, kind="crash", node=node))
        return self

    def crash_during_multicast(
        self, time: float, node: str, allowed_receivers: Iterable[str]
    ) -> "FailureSchedule":
        """Crash ``node`` at ``time`` such that from that instant on, only
        ``allowed_receivers`` receive anything it sends, and shortly after
        it stops entirely.

        The effect is that a multicast issued by ``node`` right at ``time``
        reaches only the allowed subset -- the partial multicast of the
        paper's Example 1.
        """
        self.actions.append(
            _Action(
                time=time,
                kind="crash_during_multicast",
                node=node,
                allowed_receivers=set(allowed_receivers),
            )
        )
        return self

    def partition(self, time: float, components: Sequence[Iterable[str]]) -> "FailureSchedule":
        """Install a partition with the given components at ``time``."""
        self.actions.append(
            _Action(
                time=time,
                kind="partition",
                components=[list(component) for component in components],
            )
        )
        return self

    def isolate(self, time: float, node: str) -> "FailureSchedule":
        """Partition ``node`` away from everyone else at ``time``."""
        self.actions.append(_Action(time=time, kind="isolate", node=node))
        return self

    def heal(self, time: float) -> "FailureSchedule":
        """Heal all partitions at ``time``."""
        self.actions.append(_Action(time=time, kind="heal"))
        return self

    def drop_between(
        self,
        time: float,
        src_nodes: Iterable[str],
        dst_nodes: Iterable[str],
        duration: float,
    ) -> "FailureSchedule":
        """Drop all messages from ``src_nodes`` to ``dst_nodes`` for ``duration``."""
        self.actions.append(
            _Action(
                time=time,
                kind="drop_between",
                src_nodes=set(src_nodes),
                dst_nodes=set(dst_nodes),
                duration=duration,
            )
        )
        return self

    def merge(self, other: "FailureSchedule") -> "FailureSchedule":
        """Return a new schedule combining this one and ``other``."""
        merged = FailureSchedule()
        merged.actions = list(self.actions) + list(other.actions)
        return merged


class FaultInjector:
    """Applies a :class:`FailureSchedule` to a network on a simulator."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.applied: List[str] = []

    def install(self, schedule: FailureSchedule) -> None:
        """Schedule every action in ``schedule`` on the simulator."""
        for action in schedule.actions:
            self.sim.schedule_at(
                action.time, self._apply, action, label=f"fault:{action.kind}"
            )

    # ------------------------------------------------------------------
    # Immediate application helpers (also usable directly from tests)
    # ------------------------------------------------------------------
    def crash_now(self, node: str) -> None:
        """Crash ``node`` immediately."""
        self.network.crash(node)
        self.applied.append(f"crash({node})@{self.sim.now:.3f}")

    def partition_now(self, components: Sequence[Iterable[str]]) -> None:
        """Install a partition immediately."""
        self.network.partitions.partition(components, at_time=self.sim.now)
        self.applied.append(f"partition@{self.sim.now:.3f}")

    def heal_now(self) -> None:
        """Heal all partitions immediately."""
        self.network.partitions.heal(at_time=self.sim.now)
        self.applied.append(f"heal@{self.sim.now:.3f}")

    # ------------------------------------------------------------------
    # Internal dispatch
    # ------------------------------------------------------------------
    def _apply(self, action: _Action) -> None:
        if action.kind == "crash":
            self.crash_now(action.node)
        elif action.kind == "crash_during_multicast":
            self._apply_crash_during_multicast(action)
        elif action.kind == "partition":
            self.partition_now(action.components or [])
        elif action.kind == "isolate":
            self.network.partitions.isolate(action.node, at_time=self.sim.now)
            self.applied.append(f"isolate({action.node})@{self.sim.now:.3f}")
        elif action.kind == "heal":
            self.heal_now()
        elif action.kind == "drop_between":
            self._apply_drop_between(action)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown fault action {action.kind!r}")

    def _apply_crash_during_multicast(self, action: _Action) -> None:
        node = action.node
        allowed = action.allowed_receivers or set()

        def partial_filter(src: str, dst: str, payload: object) -> bool:
            if src != node:
                return True
            return dst in allowed or dst == node

        self.network.add_filter(partial_filter)
        self.applied.append(
            f"crash_during_multicast({node}, allowed={sorted(allowed)})@{self.sim.now:.3f}"
        )
        # Let anything the node sends *right now* (same simulated instant)
        # reach the allowed subset, then crash it for good.
        self.sim.schedule(
            0.0, self._finish_partial_crash, node, label=f"fault:finish-crash({node})"
        )

    def _finish_partial_crash(self, node: str) -> None:
        self.network.crash(node)
        self.applied.append(f"crash({node})@{self.sim.now:.3f}")

    def _apply_drop_between(self, action: _Action) -> None:
        src_nodes = action.src_nodes or set()
        dst_nodes = action.dst_nodes or set()

        def drop_filter(src: str, dst: str, payload: object) -> bool:
            return not (src in src_nodes and dst in dst_nodes)

        self.network.add_filter(drop_filter)
        self.applied.append(
            f"drop_between({sorted(src_nodes)}->{sorted(dst_nodes)})@{self.sim.now:.3f}"
        )
        self.sim.schedule(
            action.duration or 0.0,
            self.network.remove_filter,
            drop_filter,
            label="fault:drop-window-end",
        )
