"""Latency models for the simulated asynchronous network.

The paper's only assumption about message transmission is that delays are
*unbounded and unpredictable* ("message transmission times cannot be
accurately estimated").  Each model below samples a per-message delay; the
network layer additionally enforces FIFO ordering per channel, matching the
paper's transport-layer assumption of sequenced delivery.

All models draw from a :class:`random.Random` supplied by the simulator so
that simulations are reproducible from a single seed.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass


class LatencyModel(ABC):
    """Samples one-way message transmission delays."""

    @abstractmethod
    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        """Return a non-negative delay for a message from ``src`` to ``dst``."""

    def describe(self) -> str:
        """Human-readable description used in benchmark reports."""
        return type(self).__name__


def get_latency_model(model, **options) -> "LatencyModel":
    """Resolve a latency model from a registry name (or pass one through).

    ``model`` may be a :class:`LatencyModel` instance (returned as-is;
    ``options`` must then be empty) or one of the registry names below --
    the JSON-shaped form experiment specs use so a sweep cell can name its
    network without holding an object::

        get_latency_model("lognormal", median=2.0, sigma=0.8)
    """
    if isinstance(model, LatencyModel):
        if options:
            raise ValueError("options only apply when resolving by name")
        return model
    try:
        factory = LATENCY_MODELS[model]
    except KeyError:
        raise ValueError(
            f"unknown latency model {model!r}; expected one of {sorted(LATENCY_MODELS)}"
        ) from None
    return factory(**options)


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units.

    Useful in unit tests where deterministic arrival times make assertions
    about delivery order straightforward.
    """

    delay: float = 1.0

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self.delay

    def describe(self) -> str:
        return f"constant({self.delay})"


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Delays uniformly distributed in ``[low, high]``."""

    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"invalid uniform latency bounds [{self.low}, {self.high}]")

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"uniform({self.low}, {self.high})"


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """Exponentially distributed delays with a minimum floor.

    Heavy-ish tail: occasionally a message is much slower than average,
    which is exactly the behaviour that makes asynchronous protocols hard
    and exercises the time-silence / suspicion machinery.
    """

    mean: float = 1.0
    floor: float = 0.05

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.floor < 0:
            raise ValueError("mean must be positive and floor non-negative")

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)

    def describe(self) -> str:
        return f"exponential(mean={self.mean}, floor={self.floor})"


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Log-normally distributed delays, a common WAN latency approximation.

    ``median`` is the median delay; ``sigma`` controls tail heaviness.
    """

    median: float = 1.0
    sigma: float = 0.5
    floor: float = 0.01

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma < 0 or self.floor < 0:
            raise ValueError("invalid log-normal latency parameters")

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self.floor + rng.lognormvariate(math.log(self.median), self.sigma)

    def describe(self) -> str:
        return f"lognormal(median={self.median}, sigma={self.sigma})"


@dataclass(frozen=True)
class JitteredLatency(LatencyModel):
    """A fixed base delay per ordered pair plus random jitter.

    Models a geographically distributed deployment (e.g. processes
    "communicating over the Internet", as the paper motivates): each
    directed pair gets a stable base delay derived from the pair identity,
    plus per-message jitter.
    """

    base_low: float = 0.5
    base_high: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_low < 0 or self.base_high < self.base_low or self.jitter < 0:
            raise ValueError("invalid jittered latency parameters")

    def _pair_base(self, src: str, dst: str) -> float:
        # Derive a stable pseudo-random base delay from the pair identity so
        # that the same pair always has the same base regardless of sampling
        # order.  Uses a dedicated Random seeded from the pair.
        pair_rng = random.Random(f"{src}->{dst}")
        return pair_rng.uniform(self.base_low, self.base_high)

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self._pair_base(src, dst) + rng.uniform(0.0, self.jitter)

    def describe(self) -> str:
        return (
            f"jittered(base=[{self.base_low}, {self.base_high}], jitter={self.jitter})"
        )


#: Name -> factory registry behind :func:`get_latency_model`.
LATENCY_MODELS = {
    "constant": ConstantLatency,
    "uniform": UniformLatency,
    "exponential": ExponentialLatency,
    "lognormal": LogNormalLatency,
    "jittered": JitteredLatency,
}
