"""Network partition model.

A partition splits the set of nodes into *components*: nodes in different
components cannot exchange messages while the partition lasts.  The paper
treats partitions (real, or "virtual" partitions caused by mutual wrong
suspicion) as a first-class failure mode -- Newtop's membership service is
explicitly designed to let every connected subgroup keep operating -- so
the simulation substrate supports:

* installing a partition described as a list of components,
* isolating a single node,
* healing (removing) partitions,
* querying whether two nodes can currently communicate.

Nodes not mentioned in any component form an implicit final component of
their own, so tests only need to enumerate the interesting sides.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


class PartitionManager:
    """Tracks which nodes can currently communicate.

    The default state is a fully connected network.  At most one partition
    layout is active at a time; installing a new layout replaces the old
    one (this mirrors how the benchmarks and the paper's examples use
    partitions: one topological change at a time, possibly healed later).
    """

    def __init__(self, nodes: Optional[Iterable[str]] = None) -> None:
        self._nodes: Set[str] = set(nodes or ())
        # node -> component index; None means "no partition installed".
        self._component_of: Optional[Dict[str, int]] = None
        self._history: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------
    # Node registration
    # ------------------------------------------------------------------
    def register(self, node: str) -> None:
        """Make the partition manager aware of ``node``.

        Nodes registered after a partition is installed join component 0
        implicitly (they are considered connected to the first component).
        """
        self._nodes.add(node)

    @property
    def nodes(self) -> Set[str]:
        """All nodes known to the partition manager."""
        return set(self._nodes)

    @property
    def partitioned(self) -> bool:
        """Whether a partition is currently installed."""
        return self._component_of is not None

    # ------------------------------------------------------------------
    # Installing / healing partitions
    # ------------------------------------------------------------------
    def partition(self, components: Sequence[Iterable[str]], at_time: float = 0.0) -> None:
        """Install a partition described by ``components``.

        Each element of ``components`` is an iterable of node ids; nodes in
        different components cannot communicate.  Nodes not listed in any
        component are grouped together into one extra implicit component.
        A node may appear in at most one component.
        """
        component_of: Dict[str, int] = {}
        for index, component in enumerate(components):
            for node in component:
                if node in component_of:
                    raise ValueError(f"node {node!r} listed in more than one component")
                self._nodes.add(node)
                component_of[node] = index
        leftover_index = len(components)
        for node in self._nodes:
            component_of.setdefault(node, leftover_index)
        self._component_of = component_of
        self._history.append((at_time, self.describe()))

    def isolate(self, node: str, at_time: float = 0.0) -> None:
        """Partition ``node`` away from every other node."""
        others = [n for n in self._nodes if n != node]
        self.partition([[node], others], at_time=at_time)

    def heal(self, at_time: float = 0.0) -> None:
        """Remove any installed partition; the network becomes fully connected."""
        self._component_of = None
        self._history.append((at_time, "healed"))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def can_communicate(self, a: str, b: str) -> bool:
        """Whether a message from ``a`` can currently reach ``b``."""
        if a == b:
            return True
        if self._component_of is None:
            return True
        leftover = max(self._component_of.values(), default=0)
        return self._component_of.get(a, leftover) == self._component_of.get(b, leftover)

    def component_of(self, node: str) -> Optional[int]:
        """Index of the component containing ``node`` (None when healed)."""
        if self._component_of is None:
            return None
        return self._component_of.get(node)

    def components(self) -> List[Set[str]]:
        """Current components as a list of node-id sets.

        When no partition is installed, returns a single component with all
        known nodes.
        """
        if self._component_of is None:
            return [set(self._nodes)]
        grouped: Dict[int, Set[str]] = {}
        for node, index in self._component_of.items():
            grouped.setdefault(index, set()).add(node)
        return [grouped[index] for index in sorted(grouped)]

    def describe(self) -> str:
        """Compact human-readable description of the current layout."""
        if self._component_of is None:
            return "connected"
        parts = ["{" + ",".join(sorted(component)) + "}" for component in self.components()]
        return " | ".join(parts)

    @property
    def history(self) -> List[Tuple[float, str]]:
        """(time, description) entries for every partition change."""
        return list(self._history)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionManager({self.describe()})"
