"""Reliable FIFO transport endpoints.

The transport layer is the interface protocol processes actually use.  It
wraps the raw :class:`~repro.net.network.Network` with:

* per-destination FIFO sequence numbers (and an assertion that the network
  really did preserve FIFO order -- a cheap, always-on sanity check of the
  substrate the protocol's correctness argument rests on),
* typed envelopes (:class:`TransportMessage`) carrying the sender, a
  payload, a wire-size estimate and timing information used by the
  benchmark harness,
* a per-endpoint dispatch table so several protocol layers on the same node
  (data traffic, membership traffic, group-formation traffic) can register
  independent handlers keyed by a ``channel`` string.

This mirrors the paper's architecture (Fig. 3) where the membership
service's ``mcast`` primitive and the data multicasts both sit on the same
transport but are logically distinct streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional

from repro.net.network import Network

#: Handler signature: ``handler(message)``.
Handler = Callable[["TransportMessage"], None]

#: Batch-handler signature: ``handler(messages)`` -- every message that
#: arrived on one channel at one simulated instant, in send order.
BatchHandler = Callable[[List["TransportMessage"]], None]

#: Root-cause fallback by payload ``kind`` (Newtop data-channel traffic).
_KIND_CAUSES = {
    "data": "app_multicast",
    "null": "null_time_silence",
    "start_group": "formation",
    "view_cut": "view_cut",
}

#: Root-cause fallback by payload type (membership/formation control).
_TYPE_CAUSES = {
    "SuspectMessage": "suspicion_gossip",
    "RefuteMessage": "confirm_refute",
    "ConfirmMessage": "confirm_refute",
}


def _derive_cause(kind: str, payload: object) -> str:
    """Best-effort root cause for sends whose call site threads none.

    Newtop call sites all pass an explicit ``cause=``; this fallback keeps
    the partition invariant (every send lands in *some* cause counter) for
    the baseline stacks, whose payloads map to ``"other"``.
    """
    cause = _KIND_CAUSES.get(kind)
    if cause is not None:
        return cause
    return _TYPE_CAUSES.get(type(payload).__name__, "other")


@dataclass
class TransportMessage:
    """Envelope delivered to endpoint handlers.

    Attributes
    ----------
    src, dst:
        Node identifiers.
    channel:
        Logical stream name, e.g. ``"data"`` or ``"membership"``.
    payload:
        The protocol-level message object.
    seqno:
        Per ``(src, dst, channel)`` FIFO sequence number, starting at 1.
    size_bytes:
        Estimated wire size of the payload (protocol overhead accounting).
    sent_at:
        Simulated time at which the message was handed to the network.
    """

    src: str
    dst: str
    channel: str
    payload: object
    seqno: int
    size_bytes: int
    sent_at: float


@dataclass
class TransportStats:
    """Per-endpoint counters."""

    sent: int = 0
    received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Stale-seqno frames suppressed because a link-fault model duplicated
    #: them on the wire (only counted while such a model is attached).
    duplicates_suppressed: int = 0
    per_channel_sent: Dict[str, int] = field(default_factory=dict)
    per_channel_received: Dict[str, int] = field(default_factory=dict)


class FifoViolationError(RuntimeError):
    """Raised when the network delivers a channel's messages out of order."""


class Endpoint:
    """A node's attachment point to the transport.

    Create endpoints through :meth:`Transport.endpoint`, not directly.
    """

    def __init__(self, transport: "Transport", node_id: str) -> None:
        self.transport = transport
        self.node_id = node_id
        self.stats = TransportStats()
        self._handlers: Dict[str, Handler] = {}
        self._batch_handlers: Dict[str, "BatchHandler"] = {}
        self._default_handler: Optional[Handler] = None
        # FIFO bookkeeping: next expected seqno per (src, channel).
        self._next_expected: Dict[tuple, int] = {}
        # Outgoing seqnos per (dst, channel).
        self._next_outgoing: Dict[tuple, int] = {}
        self._crashed = False

    # ------------------------------------------------------------------
    # Handler registration
    # ------------------------------------------------------------------
    def register_handler(self, channel: str, handler: Handler) -> None:
        """Register the handler for messages on ``channel``."""
        self._handlers[channel] = handler

    def register_batch_handler(self, channel: str, handler: "BatchHandler") -> None:
        """Register a handler invoked once per delivery *instant* with every
        message that arrived on ``channel`` at that instant, in send order.

        A batch handler supersedes the per-message handler for batched
        arrivals (the per-message handler still serves the single-message
        delivery path).  FIFO checking and the per-message stats are
        performed before the batch handler runs.  Protocols use this to pay
        per-receipt follow-up work (delivery attempts, deferred-send
        flushes) once per instant instead of once per message.
        """
        self._batch_handlers[channel] = handler

    def register_default_handler(self, handler: Handler) -> None:
        """Handler for channels without a specific registration."""
        self._default_handler = handler

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dst: str,
        payload: object,
        channel: str = "data",
        size_bytes: int = 0,
        cause: Optional[str] = None,
    ) -> bool:
        """Unicast ``payload`` to ``dst`` on ``channel``.

        ``cause`` names the root cause that made this send happen
        (``app_multicast``, ``null_time_silence``, ``suspicion_gossip``,
        ``confirm_refute``, ``formation``, ``failover_resend``,
        ``view_cut``, ...); when observed, every send is counted into
        ``transport.sends_by_cause.<cause>`` and the counters exactly
        partition the ``transport.sends`` total.  Call sites that thread
        no cause fall back to a derivation from the payload itself.
        """
        if self._crashed:
            return False
        key = (dst, channel)
        seqno = self._next_outgoing.get(key, 0) + 1
        self._next_outgoing[key] = seqno
        message = TransportMessage(
            src=self.node_id,
            dst=dst,
            channel=channel,
            payload=payload,
            seqno=seqno,
            size_bytes=size_bytes,
            sent_at=self.transport.network.sim.now,
        )
        self.stats.sent += 1
        self.stats.bytes_sent += size_bytes
        self.stats.per_channel_sent[channel] = self.stats.per_channel_sent.get(channel, 0) + 1
        kind_counters = self.transport._sent_kind_counters
        if kind_counters is not None:
            kind = getattr(payload, "kind", None) or type(payload).__name__
            counter = kind_counters.get(kind)
            if counter is None:
                counter = kind_counters[kind] = self.transport._metrics.counter(
                    "transport.sent." + kind
                )
            counter.value += 1
            # Cause attribution: bumped in the same branch as the total, so
            # sum(transport.sends_by_cause.*) == transport.sends holds by
            # construction.
            self.transport._c_sends.value += 1
            if cause is None:
                cause = _derive_cause(kind, payload)
            cause_counters = self.transport._cause_counters
            cause_counter = cause_counters.get(cause)
            if cause_counter is None:
                cause_counter = cause_counters[cause] = self.transport._metrics.counter(
                    "transport.sends_by_cause." + cause
                )
            cause_counter.value += 1
        return self.transport.network.send(self.node_id, dst, message, size_bytes=size_bytes)

    def multicast(
        self,
        dsts: Iterable[str],
        payload: object,
        channel: str = "data",
        size_bytes: int = 0,
        cause: Optional[str] = None,
    ) -> int:
        """Unicast ``payload`` to every destination (including possibly self).

        Destinations are contacted in sorted order so simulations are
        deterministic.  Returns the number of accepted sends.
        """
        accepted = 0
        for dst in sorted(set(dsts)):
            if self.send(dst, payload, channel=channel, size_bytes=size_bytes, cause=cause):
                accepted += 1
        return accepted

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop this endpoint: it stops sending and receiving."""
        self._crashed = True
        self.transport.network.crash(self.node_id)

    @property
    def crashed(self) -> bool:
        """Whether :meth:`crash` has been called."""
        return self._crashed

    # ------------------------------------------------------------------
    # Delivery (called by Transport)
    # ------------------------------------------------------------------
    def _on_network_delivery_batch(self, items: List[tuple]) -> None:
        """Process every message that arrived at one simulated instant.

        The network hands same-instant arrivals over in a single call (one
        scheduled event per destination per instant); FIFO checking and the
        stats remain per message.  Channels with a registered batch handler
        receive all their same-instant messages in one call *after* the
        per-message channels dispatched (in practice all protocol traffic
        shares one channel, so a batch is single-channel).
        """
        batch_hist = self.transport._batch_hist
        if batch_hist is not None:
            batch_hist.record(len(items))
        grouped: Optional[Dict[str, List[TransportMessage]]] = None
        for src, raw in items:
            if self._crashed:
                return
            message = self._ingest(src, raw)
            if message is None:
                continue
            batch_handler = self._batch_handlers.get(message.channel)
            if batch_handler is None:
                handler = self._handlers.get(message.channel, self._default_handler)
                if handler is not None:
                    handler(message)
                continue
            if grouped is None:
                grouped = {}
            grouped.setdefault(message.channel, []).append(message)
        if grouped is None:
            return
        profiler = self.transport._profiler
        if profiler is None:
            for channel, messages in grouped.items():
                if self._crashed:
                    return
                self._batch_handlers[channel](messages)
            return
        # Timed as a *nested* section: this wall time is a subset of the
        # enclosing delivery callback's category, not additive with it.
        start = perf_counter()
        for channel, messages in grouped.items():
            if self._crashed:
                break
            self._batch_handlers[channel](messages)
        profiler.record("protocol_receive", perf_counter() - start)

    def _on_network_delivery(self, src: str, raw: object) -> None:
        message = self._ingest(src, raw)
        if message is None:
            return
        handler = self._handlers.get(message.channel, self._default_handler)
        if handler is not None:
            handler(message)

    def _ingest(self, src: str, raw: object) -> Optional[TransportMessage]:
        """FIFO-check and account one arrival; returns the validated message
        (or ``None`` when the endpoint has crashed)."""
        if self._crashed:
            return None
        if not isinstance(raw, TransportMessage):  # pragma: no cover - substrate misuse
            raise TypeError(f"unexpected payload on the wire: {raw!r}")
        message = raw
        key = (src, message.channel)
        expected = self._next_expected.get(key, 1)
        if message.seqno < expected:
            if self.transport.network.link_fault_model is not None:
                # A duplicated frame: the fault model re-delivers copies of
                # frames the channel has already moved past.  A sequenced
                # transport absorbs those silently -- suppress and count.
                self.stats.duplicates_suppressed += 1
                return None
            raise FifoViolationError(
                f"{self.node_id}: duplicate/out-of-order message from {src} "
                f"on {message.channel}: seqno {message.seqno} < expected {expected}"
            )
        # Gaps are legal: they correspond to messages lost to crashes or
        # partitions (the network never re-orders within a channel, so a
        # larger-than-expected seqno means the intermediate ones are gone
        # for good, which is exactly the paper's loss model).
        self._next_expected[key] = message.seqno + 1
        self.stats.received += 1
        self.stats.bytes_received += message.size_bytes
        self.stats.per_channel_received[message.channel] = (
            self.stats.per_channel_received.get(message.channel, 0) + 1
        )
        return message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self._crashed else "up"
        return f"Endpoint({self.node_id!r}, {state})"


class Transport:
    """Factory and registry for :class:`Endpoint` objects on one network."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._endpoints: Dict[str, Endpoint] = {}
        # Observation wiring (``sim.metrics`` / ``sim.profiler`` are None
        # unless the run is observed): per-kind send counters are created
        # lazily as kinds appear; the batch histogram sizes same-instant
        # delivery batches.
        metrics = network.sim.metrics
        self._metrics = metrics
        self._profiler = network.sim.profiler
        if metrics is not None:
            self._sent_kind_counters: Optional[Dict[str, object]] = {}
            self._batch_hist = metrics.histogram("transport.delivery_batch_size")
            self._c_sends = metrics.counter("transport.sends")
            self._cause_counters: Optional[Dict[str, object]] = {}
        else:
            self._sent_kind_counters = None
            self._batch_hist = None
            self._c_sends = None
            self._cause_counters = None

    def endpoint(self, node_id: str) -> Endpoint:
        """Create (or return the existing) endpoint for ``node_id``."""
        if node_id in self._endpoints:
            return self._endpoints[node_id]
        endpoint = Endpoint(self, node_id)
        self.network.attach(
            node_id,
            endpoint._on_network_delivery,
            deliver_batch=endpoint._on_network_delivery_batch,
        )
        self._endpoints[node_id] = endpoint
        return endpoint

    def endpoints(self) -> List[Endpoint]:
        """All endpoints created so far, sorted by node id."""
        return [self._endpoints[node_id] for node_id in sorted(self._endpoints)]

    def get(self, node_id: str) -> Optional[Endpoint]:
        """Return the endpoint for ``node_id`` if it exists."""
        return self._endpoints.get(node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transport(endpoints={sorted(self._endpoints)})"
