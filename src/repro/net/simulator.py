"""Discrete-event simulation kernel.

The Newtop paper assumes an *asynchronous* system: message transmission
times cannot be accurately estimated and processes have no synchronised
clocks.  A discrete-event simulator reproduces this faithfully while being
deterministic and seedable, which is what the test-suite and the benchmark
harness need.  Simulated time is a ``float`` in arbitrary "time units";
the protocol never reads it for correctness decisions (only timers such as
the time-silence period ``omega`` and the suspicion timeout ``Omega`` are
expressed in it, exactly as the paper's timeouts are).

The kernel is intentionally small but built for throughput:

* :class:`Simulator` owns the virtual clock, the pending-event stores and a
  seeded :class:`random.Random` instance.
* :meth:`Simulator.schedule` registers a callback after a delay and returns
  an :class:`EventHandle` that can be cancelled.  Sparse one-shot events
  (message deliveries, scenario events) live on a binary heap; cancellation
  there is lazy (the heap entry is only marked dead), but the heap is
  *compacted* whenever the dead fraction crosses
  :attr:`Simulator.compaction_threshold`.
* High-churn periodic timers -- the protocol's per-(process, group)
  suspector probes and time-silence nulls, thousands of them per tick at
  10k-process scale -- opt into the :class:`_TimerWheel` with
  ``schedule(..., wheel=True)``: a slot-bucketed store where insertion is
  an O(1) append, cancellation is an O(1) mark (the record leaves memory
  when its slot's instant passes -- no tombstone ever reaches the heap, so
  timer churn can no longer trigger heap compactions at all), and slots
  are sorted only when their time arrives.  Heap and wheel merge by the
  global ``(time, sequence)`` key at execution, so the firing order is
  *byte-identical* to an all-heap run -- pinned by equivalence tests, and
  switchable off entirely with ``Simulator(use_timer_wheel=False)``.
* Dead event records are recycled through a bounded free list; at high
  event rates this keeps allocation pressure flat.  A per-record
  *generation* counter makes recycled records safe: a stale
  :class:`EventHandle` whose event already fired (or was compacted away)
  can never cancel the record's next occupant.
* :meth:`Simulator.run` / :meth:`Simulator.run_until` drive the simulation.

Everything above the kernel (network, transport, protocol processes) is
built from these primitives.
"""

from __future__ import annotations

import heapq
import random
from time import perf_counter
from typing import Any, Callable, List, Optional


class SimulatorError(RuntimeError):
    """Raised when the simulation kernel is used incorrectly."""


class _ScheduledEvent:
    """Internal heap entry.

    Ordered by ``(time, sequence)`` so that events scheduled for the same
    instant fire in the order they were scheduled (stable, deterministic).
    Plain ``__slots__`` class (not a dataclass): these records are the
    hottest allocation in the whole simulator and are recycled via the
    kernel's free list, with ``generation`` guarding stale handles.
    """

    __slots__ = (
        "time", "sequence", "callback", "args", "cancelled", "label",
        "generation", "in_wheel",
    )

    def __init__(self) -> None:
        self.time = 0.0
        self.sequence = 0
        self.callback: Optional[Callable[..., None]] = None
        self.args: tuple = ()
        self.cancelled = False
        self.label = ""
        self.generation = 0
        #: Whether the record currently lives in the timer wheel rather
        #: than the heap (drives the O(1) cancellation path).
        self.in_wheel = False

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel.

    The handle pins down the exact (event record, generation) pair it was
    created for; once the event has fired -- and its record possibly been
    recycled for a later event -- the handle becomes inert.
    """

    __slots__ = ("_sim", "_event", "_generation", "_time", "_label", "_cancelled")

    def __init__(self, sim: "Simulator", event: _ScheduledEvent) -> None:
        self._sim = sim
        self._event = event
        self._generation = event.generation
        self._time = event.time
        self._label = event.label
        self._cancelled = False

    @property
    def time(self) -> float:
        """Simulated time at which the event will (or would) fire."""
        return self._time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this handle."""
        return self._cancelled

    @property
    def label(self) -> str:
        """Optional human-readable label given at scheduling time."""
        return self._label

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent).

        Cancelling drops the callback and argument references immediately:
        a cancelled long-dated timer must not keep its closure (and
        whatever object graph it captures) alive until the original fire
        time rolls around.
        """
        if self._cancelled:
            return
        self._cancelled = True
        self._sim._cancel_event(self._event, self._generation)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(time={self.time!r}, label={self.label!r}, {state})"


class _TimerWheel:
    """Slot-bucketed event store for high-churn periodic timers.

    Events are filed under their absolute slot index ``floor(time / width)``
    in plain per-slot lists: insertion appends (O(1)), cancellation marks
    the record dead (O(1) -- the slot is dropped wholesale when its instant
    passes, so cancelled records never accumulate the way lazy heap
    tombstones do).  A small heap of *slot indices* (one entry per open
    slot, never per event) finds the next non-empty slot; a slot's events
    are sorted by the global ``(time, sequence)`` key only when the wheel
    reaches it, which preserves exactly the order an all-heap simulator
    would fire them in.

    The wheel is "hierarchical" in the lazy sense: far-future slots stay
    unsorted dict entries at full width regardless of horizon, so there is
    no cascade step and no horizon limit -- the cost of ordering an event
    is paid once, in the slot-local sort amortised over the slot's
    occupants.
    """

    __slots__ = (
        "slot_width", "_slots", "_slot_heap", "_current", "_current_pos",
        "_current_index", "count", "live", "_recycle",
    )

    def __init__(self, slot_width: float, recycle: Callable[["_ScheduledEvent"], None]) -> None:
        if slot_width <= 0:
            raise SimulatorError("wheel slot width must be positive")
        self.slot_width = slot_width
        self._slots: dict[int, List[_ScheduledEvent]] = {}
        self._slot_heap: List[int] = []
        #: Sorted events of the slot currently being served.
        self._current: List[_ScheduledEvent] = []
        self._current_pos = 0
        #: Index of the slot currently being served (inserts at or before
        #: it must go to the main heap -- the sorted run is never reopened).
        self._current_index: Optional[int] = None
        self.count = 0
        self.live = 0
        self._recycle = recycle

    def slot_for(self, time: float) -> int:
        """Absolute slot index an event at ``time`` files under."""
        return int(time / self.slot_width)

    def accepts(self, slot_index: int) -> bool:
        """Whether an event in ``slot_index`` may still enter the wheel.

        Once a slot has been sorted and is being served, late arrivals for
        it (zero-delay reschedules inside the same slot) fall back to the
        heap; the merged pop order keeps them exactly placed.
        """
        return self._current_index is None or slot_index > self._current_index

    def insert(self, event: _ScheduledEvent, slot_index: int) -> None:
        bucket = self._slots.get(slot_index)
        if bucket is None:
            self._slots[slot_index] = bucket = []
            heapq.heappush(self._slot_heap, slot_index)
        bucket.append(event)
        event.in_wheel = True
        self.count += 1
        self.live += 1

    def on_cancelled(self) -> None:
        """Bookkeeping for an O(1) in-wheel cancellation."""
        self.live -= 1

    def peek(self) -> Optional[_ScheduledEvent]:
        """The next live wheel event, advancing slots as needed."""
        while True:
            current = self._current
            position = self._current_pos
            while position < len(current):
                event = current[position]
                if event.cancelled:
                    position += 1
                    self.count -= 1
                    self._recycle(event)
                    continue
                self._current_pos = position
                return event
            self._current_pos = position
            if not self._slot_heap:
                if current:
                    self._current = []
                    self._current_pos = 0
                return None
            index = heapq.heappop(self._slot_heap)
            bucket = self._slots.pop(index)
            self._current_index = index
            live = []
            for event in bucket:
                if event.cancelled:
                    self.count -= 1
                    self._recycle(event)
                else:
                    live.append(event)
            live.sort()
            self._current = live
            self._current_pos = 0

    def pop(self) -> _ScheduledEvent:
        """Remove and return the event :meth:`peek` just found."""
        event = self._current[self._current_pos]
        self._current_pos += 1
        self.count -= 1
        self.live -= 1
        return event


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  All
        randomness in a simulation (latency sampling, workload generation)
        should be drawn from :attr:`rng` so runs are reproducible.
    use_timer_wheel:
        When ``False``, ``schedule(..., wheel=True)`` requests silently fall
        back to the heap.  Execution order is identical either way (the
        equivalence tests run both); the switch only exists to prove that.
    wheel_slot_width:
        Bucket granularity of the timer wheel, in simulated time units.
        Periodic protocol timers (suspector checks at 0.5-1.0, time-silence
        at omega ~1.5-2.0) land a handful of slots ahead, keeping per-slot
        sorts small.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` (duck-typed --
        the kernel never imports :mod:`repro.obs`).  When given, the kernel
        counts events scheduled / fired / cancelled and registers polled
        occupancy gauges for the heap and the wheel.  When ``None`` (the
        default) the hot paths pay one ``is None`` check per event.
    profiler:
        Optional :class:`repro.obs.profiler.HotPathProfiler`.  When given,
        :meth:`step` wall-clocks every callback and files it under the
        category derived from its scheduling label.
    journeys:
        Optional :class:`repro.obs.journey.JourneyTracker` (duck-typed, like
        ``metrics``).  The kernel itself never calls it; it rides here so
        the network/transport/protocol layers can read ``sim.journeys`` at
        their own construction time.
    """

    #: Compact the heap once more than this fraction of it is cancelled
    #: entries (and the heap is at least ``_MIN_COMPACTION_SIZE`` long).
    compaction_threshold: float = 0.5
    _MIN_COMPACTION_SIZE = 64
    _FREE_LIST_LIMIT = 4096
    #: Relative tolerance for clamping epsilon-negative delays: absolute
    #: scheduling (``schedule_at``) computes ``t - now``, and float rounding
    #: can turn an intended zero into e.g. ``-1e-16`` mid-run.  Kept within
    #: a few thousand ulps of double precision so genuinely past-scheduled
    #: events (real timer-arithmetic bugs) still raise instead of being
    #: silently clamped.
    _NEGATIVE_DELAY_EPSILON = 1e-12

    def __init__(
        self,
        seed: int = 0,
        use_timer_wheel: bool = True,
        wheel_slot_width: float = 0.5,
        metrics=None,
        profiler=None,
        journeys=None,
    ) -> None:
        self._now: float = 0.0
        self._heap: list[_ScheduledEvent] = []
        self._next_sequence = 0
        self._events_processed = 0
        self._running = False
        self._cancelled_in_heap = 0
        self._free: list[_ScheduledEvent] = []
        self.compactions = 0
        self.rng = random.Random(seed)
        self.seed = seed
        self._wheel: Optional[_TimerWheel] = (
            _TimerWheel(wheel_slot_width, self._recycle) if use_timer_wheel else None
        )
        #: Observation hooks (see the class docstring); downstream layers
        #: (network, transport, protocol) read ``sim.metrics`` at their own
        #: construction time, so the registry rides the object everything
        #: already holds.
        self.metrics = metrics
        self.profiler = profiler
        self.journeys = journeys
        if metrics is not None:
            self._c_scheduled = metrics.counter("sim.events_scheduled")
            self._c_fired = metrics.counter("sim.events_fired")
            self._c_cancelled = metrics.counter("sim.events_cancelled")
            metrics.gauge("sim.heap_pending", lambda: len(self._heap))
            metrics.gauge(
                "sim.heap_live", lambda: len(self._heap) - self._cancelled_in_heap
            )
            metrics.gauge(
                "sim.wheel_pending",
                lambda: self._wheel.count if self._wheel is not None else 0,
            )
            metrics.gauge(
                "sim.wheel_live",
                lambda: self._wheel.live if self._wheel is not None else 0,
            )
        else:
            self._c_scheduled = None
            self._c_fired = None
            self._c_cancelled = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (monitoring / debugging)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (including cancelled ones)."""
        wheel = self._wheel
        return len(self._heap) + (wheel.count if wheel is not None else 0)

    @property
    def live_pending_events(self) -> int:
        """Number of queued events that have not been cancelled."""
        live = len(self._heap) - self._cancelled_in_heap
        wheel = self._wheel
        return live + (wheel.live if wheel is not None else 0)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
        wheel: bool = False,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        ``delay`` must be non-negative; a zero delay schedules the callback
        for the current instant but *after* the currently executing event
        completes (run-to-completion semantics, like an event loop).
        Epsilon-negative delays produced by float rounding of absolute
        times are clamped to zero rather than rejected.

        ``wheel=True`` marks the event as a high-churn periodic timer that
        should live in the timer wheel (O(1) cancellation, no heap
        tombstones).  It is purely a placement hint: firing order is the
        global ``(time, sequence)`` order regardless of store.
        """
        if delay < 0:
            if delay >= -self._NEGATIVE_DELAY_EPSILON * max(1.0, abs(self._now)):
                delay = 0.0
            else:
                raise SimulatorError(
                    f"cannot schedule an event in the past (delay={delay})"
                )
        if self._c_scheduled is not None:
            self._c_scheduled.value += 1
        event = self._new_event()
        event.time = self._now + delay
        event.sequence = self._next_sequence
        self._next_sequence += 1
        event.callback = callback
        event.args = args
        event.label = label
        timer_wheel = self._wheel
        if wheel and timer_wheel is not None:
            slot_index = timer_wheel.slot_for(event.time)
            if timer_wheel.accepts(slot_index):
                timer_wheel.insert(event, slot_index)
                return EventHandle(self, event)
        heapq.heappush(self._heap, event)
        return EventHandle(self, event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        return self.schedule(time - self._now, callback, *args, label=label)

    def call_soon(self, callback: Callable[..., None], *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant."""
        return self.schedule(0.0, callback, *args, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (only cancelled events or nothing at all).

        The heap and the timer wheel are merged here by the global
        ``(time, sequence)`` key, so the firing order is independent of
        which store an event was placed in.
        """
        heap_event = self._peek_heap()
        timer_wheel = self._wheel
        wheel_event = timer_wheel.peek() if timer_wheel is not None else None
        if heap_event is None and wheel_event is None:
            return False
        if wheel_event is None or (heap_event is not None and heap_event < wheel_event):
            event = heapq.heappop(self._heap)
        else:
            event = timer_wheel.pop()
        if event.time < self._now:
            raise SimulatorError("event queue corrupted: time went backwards")
        callback = event.callback
        args = event.args
        self._now = event.time
        self._events_processed += 1
        if self._c_fired is not None:
            self._c_fired.value += 1
        profiler = self.profiler
        if profiler is not None:
            # The label must be captured before recycling clears it.
            label = event.label
            self._recycle(event)
            start = perf_counter()
            callback(*args)
            profiler.record_event(label, perf_counter() - start)
            return True
        # Recycle before invoking: the callback frequently schedules new
        # events, which can then reuse this record immediately.
        self._recycle(event)
        callback(*args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached or
        ``max_events`` events have been executed.

        ``until`` is an absolute simulated time; events scheduled at exactly
        ``until`` are executed.  When the run stops because of ``until`` the
        clock is advanced to ``until`` so subsequent relative scheduling
        behaves intuitively.
        """
        if self._running:
            raise SimulatorError("Simulator.run is not re-entrant")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    return
                # Peek at the next non-cancelled event (heap or wheel).
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    break
                if not self.step():
                    break
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int = 10_000_000,
    ) -> bool:
        """Run until ``predicate()`` becomes true or ``timeout`` time passes.

        Returns ``True`` if the predicate became true, ``False`` on timeout
        or queue exhaustion.  The predicate is evaluated after every event.
        """
        deadline = self._now + timeout
        executed = 0
        if predicate():
            return True
        while executed < max_events:
            next_event = self._peek()
            if next_event is None or next_event.time > deadline:
                break
            self.step()
            executed += 1
            if predicate():
                return True
        return predicate()

    def _peek(self) -> Optional[_ScheduledEvent]:
        """Return the next non-cancelled event without executing it."""
        heap_event = self._peek_heap()
        timer_wheel = self._wheel
        wheel_event = timer_wheel.peek() if timer_wheel is not None else None
        if heap_event is None:
            return wheel_event
        if wheel_event is None:
            return heap_event
        return heap_event if heap_event < wheel_event else wheel_event

    def _peek_heap(self) -> Optional[_ScheduledEvent]:
        """Next live heap event, discarding cancelled entries at the top."""
        while self._heap and self._heap[0].cancelled:
            self._cancelled_in_heap -= 1
            self._recycle(heapq.heappop(self._heap))
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # Event-record lifecycle (free list + lazy-deletion compaction)
    # ------------------------------------------------------------------
    def _new_event(self) -> _ScheduledEvent:
        if self._free:
            return self._free.pop()
        return _ScheduledEvent()

    def _recycle(self, event: _ScheduledEvent) -> None:
        """Retire an event record that left the heap.

        Bumping the generation invalidates every outstanding handle; clearing
        the callback/args drops whatever the closure kept alive.
        """
        event.generation += 1
        event.callback = None
        event.args = ()
        event.label = ""
        event.cancelled = False
        event.in_wheel = False
        if len(self._free) < self._FREE_LIST_LIMIT:
            self._free.append(event)

    def _cancel_event(self, event: _ScheduledEvent, generation: int) -> None:
        """Cancel the queued occurrence a handle refers to (if still queued)."""
        if event.generation != generation or event.cancelled:
            return
        event.cancelled = True
        if self._c_cancelled is not None:
            self._c_cancelled.value += 1
        # Release the references right away; the record itself stays in its
        # store until its turn comes (heap: lazy deletion with compaction;
        # wheel: dropped when its slot's instant passes -- O(1), no
        # compaction pressure).
        event.callback = None
        event.args = ()
        if event.in_wheel:
            self._wheel.on_cancelled()
            return
        self._cancelled_in_heap += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        heap_size = len(self._heap)
        if heap_size < self._MIN_COMPACTION_SIZE:
            return
        if self._cancelled_in_heap <= heap_size * self.compaction_threshold:
            return
        live = []
        for event in self._heap:
            if event.cancelled:
                self._recycle(event)
            else:
                live.append(event)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_in_heap = 0
        self.compactions += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={self.pending_events}, "
            f"live={self.live_pending_events}, processed={self._events_processed})"
        )
