"""Discrete-event simulation kernel.

The Newtop paper assumes an *asynchronous* system: message transmission
times cannot be accurately estimated and processes have no synchronised
clocks.  A discrete-event simulator reproduces this faithfully while being
deterministic and seedable, which is what the test-suite and the benchmark
harness need.  Simulated time is a ``float`` in arbitrary "time units";
the protocol never reads it for correctness decisions (only timers such as
the time-silence period ``omega`` and the suspicion timeout ``Omega`` are
expressed in it, exactly as the paper's timeouts are).

The kernel is intentionally small:

* :class:`Simulator` owns the virtual clock, the pending-event heap and a
  seeded :class:`random.Random` instance.
* :meth:`Simulator.schedule` registers a callback after a delay and returns
  an :class:`EventHandle` that can be cancelled.
* :meth:`Simulator.run` / :meth:`Simulator.run_until` drive the simulation.

Everything above the kernel (network, transport, protocol processes) is
built from these primitives.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulatorError(RuntimeError):
    """Raised when the simulation kernel is used incorrectly."""


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry.

    Ordered by ``(time, sequence)`` so that events scheduled for the same
    instant fire in the order they were scheduled (stable, deterministic).
    """

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this handle."""
        return self._event.cancelled

    @property
    def label(self) -> str:
        """Optional human-readable label given at scheduling time."""
        return self._event.label

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(time={self.time!r}, label={self.label!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  All
        randomness in a simulation (latency sampling, workload generation)
        should be drawn from :attr:`rng` so runs are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._heap: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False
        self.rng = random.Random(seed)
        self.seed = seed

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (monitoring / debugging)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        ``delay`` must be non-negative; a zero delay schedules the callback
        for the current instant but *after* the currently executing event
        completes (run-to-completion semantics, like an event loop).
        """
        if delay < 0:
            raise SimulatorError(f"cannot schedule an event in the past (delay={delay})")
        event = _ScheduledEvent(
            time=self._now + delay,
            sequence=next(self._sequence),
            callback=callback,
            args=args,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        return self.schedule(time - self._now, callback, *args, label=label)

    def call_soon(self, callback: Callable[..., None], *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant."""
        return self.schedule(0.0, callback, *args, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (only cancelled events or nothing at all).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulatorError("event heap corrupted: time went backwards")
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached or
        ``max_events`` events have been executed.

        ``until`` is an absolute simulated time; events scheduled at exactly
        ``until`` are executed.  When the run stops because of ``until`` the
        clock is advanced to ``until`` so subsequent relative scheduling
        behaves intuitively.
        """
        if self._running:
            raise SimulatorError("Simulator.run is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    return
                # Peek at the next non-cancelled event.
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    break
                if not self.step():
                    break
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int = 10_000_000,
    ) -> bool:
        """Run until ``predicate()`` becomes true or ``timeout`` time passes.

        Returns ``True`` if the predicate became true, ``False`` on timeout
        or queue exhaustion.  The predicate is evaluated after every event.
        """
        deadline = self._now + timeout
        executed = 0
        if predicate():
            return True
        while self._heap and executed < max_events:
            next_event = self._peek()
            if next_event is None or next_event.time > deadline:
                break
            self.step()
            executed += 1
            if predicate():
                return True
        return predicate()

    def _peek(self) -> Optional[_ScheduledEvent]:
        """Return the next non-cancelled event without executing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
