"""Discrete-event simulation kernel.

The Newtop paper assumes an *asynchronous* system: message transmission
times cannot be accurately estimated and processes have no synchronised
clocks.  A discrete-event simulator reproduces this faithfully while being
deterministic and seedable, which is what the test-suite and the benchmark
harness need.  Simulated time is a ``float`` in arbitrary "time units";
the protocol never reads it for correctness decisions (only timers such as
the time-silence period ``omega`` and the suspicion timeout ``Omega`` are
expressed in it, exactly as the paper's timeouts are).

The kernel is intentionally small but built for throughput:

* :class:`Simulator` owns the virtual clock, the pending-event heap and a
  seeded :class:`random.Random` instance.
* :meth:`Simulator.schedule` registers a callback after a delay and returns
  an :class:`EventHandle` that can be cancelled.  Cancellation is lazy (the
  heap entry is only marked dead), but the heap is *compacted* whenever the
  dead fraction crosses :attr:`Simulator.compaction_threshold`, so timer
  churn -- protocols that schedule and cancel timers per message -- cannot
  grow the heap beyond a small multiple of the live event count.
* Dead event records are recycled through a bounded free list; at high
  event rates this keeps allocation pressure flat.  A per-record
  *generation* counter makes recycled records safe: a stale
  :class:`EventHandle` whose event already fired (or was compacted away)
  can never cancel the record's next occupant.
* :meth:`Simulator.run` / :meth:`Simulator.run_until` drive the simulation.

Everything above the kernel (network, transport, protocol processes) is
built from these primitives.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional


class SimulatorError(RuntimeError):
    """Raised when the simulation kernel is used incorrectly."""


class _ScheduledEvent:
    """Internal heap entry.

    Ordered by ``(time, sequence)`` so that events scheduled for the same
    instant fire in the order they were scheduled (stable, deterministic).
    Plain ``__slots__`` class (not a dataclass): these records are the
    hottest allocation in the whole simulator and are recycled via the
    kernel's free list, with ``generation`` guarding stale handles.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled", "label", "generation")

    def __init__(self) -> None:
        self.time = 0.0
        self.sequence = 0
        self.callback: Optional[Callable[..., None]] = None
        self.args: tuple = ()
        self.cancelled = False
        self.label = ""
        self.generation = 0

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel.

    The handle pins down the exact (event record, generation) pair it was
    created for; once the event has fired -- and its record possibly been
    recycled for a later event -- the handle becomes inert.
    """

    __slots__ = ("_sim", "_event", "_generation", "_time", "_label", "_cancelled")

    def __init__(self, sim: "Simulator", event: _ScheduledEvent) -> None:
        self._sim = sim
        self._event = event
        self._generation = event.generation
        self._time = event.time
        self._label = event.label
        self._cancelled = False

    @property
    def time(self) -> float:
        """Simulated time at which the event will (or would) fire."""
        return self._time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this handle."""
        return self._cancelled

    @property
    def label(self) -> str:
        """Optional human-readable label given at scheduling time."""
        return self._label

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent).

        Cancelling drops the callback and argument references immediately:
        a cancelled long-dated timer must not keep its closure (and
        whatever object graph it captures) alive until the original fire
        time rolls around.
        """
        if self._cancelled:
            return
        self._cancelled = True
        self._sim._cancel_event(self._event, self._generation)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(time={self.time!r}, label={self.label!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  All
        randomness in a simulation (latency sampling, workload generation)
        should be drawn from :attr:`rng` so runs are reproducible.
    """

    #: Compact the heap once more than this fraction of it is cancelled
    #: entries (and the heap is at least ``_MIN_COMPACTION_SIZE`` long).
    compaction_threshold: float = 0.5
    _MIN_COMPACTION_SIZE = 64
    _FREE_LIST_LIMIT = 4096
    #: Relative tolerance for clamping epsilon-negative delays: absolute
    #: scheduling (``schedule_at``) computes ``t - now``, and float rounding
    #: can turn an intended zero into e.g. ``-1e-16`` mid-run.  Kept within
    #: a few thousand ulps of double precision so genuinely past-scheduled
    #: events (real timer-arithmetic bugs) still raise instead of being
    #: silently clamped.
    _NEGATIVE_DELAY_EPSILON = 1e-12

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._heap: list[_ScheduledEvent] = []
        self._next_sequence = 0
        self._events_processed = 0
        self._running = False
        self._cancelled_in_heap = 0
        self._free: list[_ScheduledEvent] = []
        self.compactions = 0
        self.rng = random.Random(seed)
        self.seed = seed

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (monitoring / debugging)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def live_pending_events(self) -> int:
        """Number of queued events that have not been cancelled."""
        return len(self._heap) - self._cancelled_in_heap

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        ``delay`` must be non-negative; a zero delay schedules the callback
        for the current instant but *after* the currently executing event
        completes (run-to-completion semantics, like an event loop).
        Epsilon-negative delays produced by float rounding of absolute
        times are clamped to zero rather than rejected.
        """
        if delay < 0:
            if delay >= -self._NEGATIVE_DELAY_EPSILON * max(1.0, abs(self._now)):
                delay = 0.0
            else:
                raise SimulatorError(
                    f"cannot schedule an event in the past (delay={delay})"
                )
        event = self._new_event()
        event.time = self._now + delay
        event.sequence = self._next_sequence
        self._next_sequence += 1
        event.callback = callback
        event.args = args
        event.label = label
        heapq.heappush(self._heap, event)
        return EventHandle(self, event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        return self.schedule(time - self._now, callback, *args, label=label)

    def call_soon(self, callback: Callable[..., None], *args: Any, label: str = "") -> EventHandle:
        """Schedule ``callback(*args)`` at the current instant."""
        return self.schedule(0.0, callback, *args, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (only cancelled events or nothing at all).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                self._recycle(event)
                continue
            if event.time < self._now:
                raise SimulatorError("event heap corrupted: time went backwards")
            callback = event.callback
            args = event.args
            self._now = event.time
            self._events_processed += 1
            # Recycle before invoking: the callback frequently schedules new
            # events, which can then reuse this record immediately.
            self._recycle(event)
            callback(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached or
        ``max_events`` events have been executed.

        ``until`` is an absolute simulated time; events scheduled at exactly
        ``until`` are executed.  When the run stops because of ``until`` the
        clock is advanced to ``until`` so subsequent relative scheduling
        behaves intuitively.
        """
        if self._running:
            raise SimulatorError("Simulator.run is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    return
                # Peek at the next non-cancelled event.
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    break
                if not self.step():
                    break
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int = 10_000_000,
    ) -> bool:
        """Run until ``predicate()`` becomes true or ``timeout`` time passes.

        Returns ``True`` if the predicate became true, ``False`` on timeout
        or queue exhaustion.  The predicate is evaluated after every event.
        """
        deadline = self._now + timeout
        executed = 0
        if predicate():
            return True
        while self._heap and executed < max_events:
            next_event = self._peek()
            if next_event is None or next_event.time > deadline:
                break
            self.step()
            executed += 1
            if predicate():
                return True
        return predicate()

    def _peek(self) -> Optional[_ScheduledEvent]:
        """Return the next non-cancelled event without executing it."""
        while self._heap and self._heap[0].cancelled:
            self._cancelled_in_heap -= 1
            self._recycle(heapq.heappop(self._heap))
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # Event-record lifecycle (free list + lazy-deletion compaction)
    # ------------------------------------------------------------------
    def _new_event(self) -> _ScheduledEvent:
        if self._free:
            return self._free.pop()
        return _ScheduledEvent()

    def _recycle(self, event: _ScheduledEvent) -> None:
        """Retire an event record that left the heap.

        Bumping the generation invalidates every outstanding handle; clearing
        the callback/args drops whatever the closure kept alive.
        """
        event.generation += 1
        event.callback = None
        event.args = ()
        event.label = ""
        event.cancelled = False
        if len(self._free) < self._FREE_LIST_LIMIT:
            self._free.append(event)

    def _cancel_event(self, event: _ScheduledEvent, generation: int) -> None:
        """Cancel the heap occurrence a handle refers to (if still queued)."""
        if event.generation != generation or event.cancelled:
            return
        event.cancelled = True
        # Release the references right away; the record itself stays in the
        # heap (lazy deletion) until popped or compacted.
        event.callback = None
        event.args = ()
        self._cancelled_in_heap += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        heap_size = len(self._heap)
        if heap_size < self._MIN_COMPACTION_SIZE:
            return
        if self._cancelled_in_heap <= heap_size * self.compaction_threshold:
            return
        live = []
        for event in self._heap:
            if event.cancelled:
                self._recycle(event)
            else:
                live.append(event)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_in_heap = 0
        self.compactions += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}, pending={self.pending_events}, "
            f"live={self.live_pending_events}, processed={self._events_processed})"
        )
