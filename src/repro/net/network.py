"""Simulated network fabric.

The :class:`Network` connects named nodes through point-to-point channels
with these properties, matching the paper's transport assumptions:

* **Reliable and sequenced (FIFO)** between connected, functioning nodes:
  each directed channel delivers messages in the order they were sent, and
  never corrupts or duplicates them.
* **Asynchronous**: per-message delays are sampled from a pluggable
  :class:`~repro.net.latency.LatencyModel` and are unbounded in general.
* **Crash-stop failures**: a crashed node never sends again and messages
  addressed to it are discarded.
* **Partitions**: while two nodes are in different partition components
  messages between them are silently dropped (checked both when the message
  is sent and when it would be delivered, so messages in flight across a
  partition event are lost -- exactly the scenario of the paper's Fig. 2 /
  Example 2).

In addition the network supports *message filters*: predicates that may
drop individual messages.  Filters are how the fault injector models a
sender crashing part-way through a multicast (Example 1) without the
protocol code needing any special hooks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.net.faults import LinkFaultModel
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.partitions import PartitionManager
from repro.net.simulator import Simulator

#: A filter receives ``(src, dst, payload)`` and returns ``True`` to let the
#: message through, ``False`` to drop it.
MessageFilter = Callable[[str, str, object], bool]

#: Delivery callback registered per node: ``callback(src, payload)``.
DeliverCallback = Callable[[str, object], None]

#: Optional batch delivery callback per node: ``callback([(src, payload), ...])``
#: invoked once per delivery instant instead of once per message.
DeliverBatchCallback = Callable[[List[Tuple[str, object]]], None]


@dataclass
class NetworkConfig:
    """Tunable parameters of the simulated network."""

    #: Model used to sample the one-way delay of every message.
    latency_model: LatencyModel = field(default_factory=UniformLatency)
    #: Whether a message already in flight is lost if a partition separates
    #: sender and receiver before it would be delivered.  The paper's
    #: scenarios (a partition occurring "while m1 is being multicast")
    #: require this to be True.
    drop_in_flight_on_partition: bool = True
    #: Minimal spacing enforced between consecutive deliveries on one
    #: channel, used to preserve FIFO order under random latencies.
    fifo_epsilon: float = 1e-9
    #: When positive, delivery times are quantised *up* to the next multiple
    #: of this window so deliveries coalesce into per-destination batch
    #: events.  Zero (the default) batches only deliveries that already
    #: share an exact instant (e.g. deterministic latency models), leaving
    #: timing untouched.  Per-channel FIFO order is preserved either way:
    #: quantisation is monotone and same-instant messages are handed over
    #: in send order.
    batch_window: float = 0.0
    #: Optional :class:`~repro.net.faults.LinkFaultModel`: seeded
    #: probabilistic drop / reorder / duplicate faults, global or per
    #: directed link.  Decisions draw from the model's own RNG, so a model
    #: with all-zero rates leaves the run byte-identical to no model.
    link_faults: Optional[LinkFaultModel] = None


@dataclass
class NetworkStats:
    """Counters maintained by the network, used by benchmarks."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped_partition: int = 0
    messages_dropped_crash: int = 0
    messages_dropped_filter: int = 0
    #: Messages lost to a probabilistic link-fault drop.
    messages_dropped_fault: int = 0
    #: Messages held back by a link-fault reorder delay.
    messages_reordered: int = 0
    #: Extra copies injected by link-fault duplication.
    messages_duplicated: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    #: Scheduled delivery events; with batching this is at most one per
    #: (destination, instant) rather than one per message.
    delivery_events: int = 0

    @property
    def messages_dropped(self) -> int:
        """Total messages lost for any reason."""
        return (
            self.messages_dropped_partition
            + self.messages_dropped_crash
            + self.messages_dropped_filter
            + self.messages_dropped_fault
        )

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy, convenient for benchmark result tables."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped_partition": self.messages_dropped_partition,
            "messages_dropped_crash": self.messages_dropped_crash,
            "messages_dropped_filter": self.messages_dropped_filter,
            "messages_dropped_fault": self.messages_dropped_fault,
            "messages_reordered": self.messages_reordered,
            "messages_duplicated": self.messages_duplicated,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "delivery_events": self.delivery_events,
        }


class Network:
    """Point-to-point message fabric between named nodes."""

    def __init__(self, sim: Simulator, config: Optional[NetworkConfig] = None) -> None:
        self.sim = sim
        self.config = config or NetworkConfig()
        self.partitions = PartitionManager()
        self.stats = NetworkStats()
        self._deliver_callbacks: Dict[str, DeliverCallback] = {}
        self._batch_callbacks: Dict[str, DeliverBatchCallback] = {}
        self._crashed: set[str] = set()
        self._filters: List[MessageFilter] = []
        # Link-fault decisions draw from the model's own stream so the
        # simulator's RNG (latency samples, protocol timers) is untouched:
        # a zero-rate model triggers nothing and changes nothing.
        faults = self.config.link_faults
        self._fault_model = faults
        self._fault_rng = faults.make_rng() if faults is not None else None
        # Per directed channel: the simulated time of the latest scheduled
        # delivery, used to preserve FIFO order.
        self._last_delivery_time: Dict[Tuple[str, str], float] = {}
        # Open delivery batches: (dst, instant) -> accepted messages, each a
        # (src, payload, size_bytes) triple in send order.  One simulator
        # event is scheduled per key; it drains the whole list at once.
        self._open_batches: Dict[Tuple[str, float], List[Tuple[str, object, int]]] = {}
        metrics = sim.metrics
        if metrics is not None:
            # Polled only at sampler ticks / snapshots -- never on the send
            # or delivery path.
            metrics.gauge("net.in_flight_batches", lambda: len(self._open_batches))
            metrics.gauge(
                "net.in_flight_messages",
                lambda: sum(len(batch) for batch in self._open_batches.values()),
            )
        # Journey tracing (``sim.journeys`` is None unless the run asked for
        # it): drop paths report why a tracked message left the wire.
        self._journeys = sim.journeys

    def _journey_drop(self, payload: object, reason: str) -> None:
        self._journeys.wire_dropped(payload, self.sim.now, reason)

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def attach(
        self,
        node_id: str,
        deliver: DeliverCallback,
        deliver_batch: Optional[DeliverBatchCallback] = None,
    ) -> None:
        """Register ``node_id`` with its delivery callback.

        When ``deliver_batch`` is given, all messages arriving at one
        simulated instant are handed over in a single call instead of one
        ``deliver`` call per message.
        """
        if node_id in self._deliver_callbacks:
            raise ValueError(f"node {node_id!r} already attached")
        self._deliver_callbacks[node_id] = deliver
        if deliver_batch is not None:
            self._batch_callbacks[node_id] = deliver_batch
        self.partitions.register(node_id)

    def detach(self, node_id: str) -> None:
        """Remove a node; pending messages to it will be dropped."""
        self._deliver_callbacks.pop(node_id, None)
        self._batch_callbacks.pop(node_id, None)

    @property
    def nodes(self) -> List[str]:
        """Identifiers of all attached nodes."""
        return sorted(self._deliver_callbacks)

    @property
    def link_fault_model(self) -> Optional[LinkFaultModel]:
        """The attached link-fault model, if any.  Transport endpoints use
        its presence to tolerate (count and suppress) duplicate frames
        instead of treating a stale sequence number as a substrate bug."""
        return self._fault_model

    def crash(self, node_id: str) -> None:
        """Mark ``node_id`` as crashed (crash-stop: it never recovers)."""
        self._crashed.add(node_id)

    def is_crashed(self, node_id: str) -> bool:
        """Whether ``node_id`` has crashed."""
        return node_id in self._crashed

    @property
    def crashed_nodes(self) -> set[str]:
        """Set of crashed node ids."""
        return set(self._crashed)

    # ------------------------------------------------------------------
    # Filters (used by fault injection)
    # ------------------------------------------------------------------
    def add_filter(self, message_filter: MessageFilter) -> None:
        """Install a drop filter; it applies to messages sent afterwards."""
        self._filters.append(message_filter)

    def remove_filter(self, message_filter: MessageFilter) -> None:
        """Remove a previously installed filter (no-op if absent)."""
        if message_filter in self._filters:
            self._filters.remove(message_filter)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: object, size_bytes: int = 0) -> bool:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns ``True`` if the message was accepted for (eventual)
        delivery, ``False`` if it was dropped immediately (crashed sender or
        receiver, partition, or filter).  Note that acceptance does not
        guarantee delivery: an in-flight message can still be lost to a
        partition installed before its delivery time.
        """
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size_bytes
        journeys = self._journeys
        if src in self._crashed:
            self.stats.messages_dropped_crash += 1
            if journeys is not None:
                self._journey_drop(payload, "sender_crashed")
            return False
        if dst in self._crashed:
            self.stats.messages_dropped_crash += 1
            if journeys is not None:
                self._journey_drop(payload, "receiver_crashed")
            return False
        if not self.partitions.can_communicate(src, dst):
            self.stats.messages_dropped_partition += 1
            if journeys is not None:
                self._journey_drop(payload, "partition")
            return False
        for message_filter in self._filters:
            if not message_filter(src, dst, payload):
                self.stats.messages_dropped_filter += 1
                if journeys is not None:
                    self._journey_drop(payload, "filter")
                return False

        # Link faults.  Decision order (drop, reorder, duplicate) is fixed
        # so runs are deterministic from the fault seed; each draw happens
        # only when its rate is non-zero, keeping zero-rate models free.
        fault_hold = 0.0
        duplicate_delay: Optional[float] = None
        model = self._fault_model
        if model is not None:
            rates = model.rates_for(src, dst)
            rng = self._fault_rng
            if rates.drop > 0.0 and rng.random() < rates.drop:
                self.stats.messages_dropped_fault += 1
                if journeys is not None:
                    self._journey_drop(payload, "link_fault")
                return False
            if rates.reorder > 0.0 and rng.random() < rates.reorder:
                fault_hold = rng.uniform(*model.reorder_delay)
                self.stats.messages_reordered += 1
            if rates.duplicate > 0.0 and rng.random() < rates.duplicate:
                duplicate_delay = rng.uniform(*model.duplicate_delay)
                self.stats.messages_duplicated += 1

        delay = self.config.latency_model.sample(self.sim.rng, src, dst)
        raw_time = self.sim.now + delay + fault_hold
        delivered_at = self._schedule_delivery(src, dst, payload, size_bytes, raw_time)
        if duplicate_delay is not None:
            # The copy travels after the original and never advances the
            # channel's FIFO clamp: genuine traffic is not displaced, and
            # the transport endpoint recognises the stale sequence number.
            self._schedule_delivery(
                src,
                dst,
                payload,
                size_bytes,
                delivered_at + duplicate_delay,
                advance_fifo=False,
            )
        return True

    def _schedule_delivery(
        self,
        src: str,
        dst: str,
        payload: object,
        size_bytes: int,
        raw_time: float,
        advance_fifo: bool = True,
    ) -> float:
        """Place one message on the wire at ``raw_time``, clamped into the
        per-channel FIFO order, and return the delivery instant.

        ``advance_fifo=False`` (duplicate copies) clamps against the
        channel's last genuine delivery without moving it, so later real
        messages may land at or before the copy -- harmless, the copy is
        suppressed by its stale sequence number at the endpoint.
        """
        channel = (src, dst)
        window = self.config.batch_window
        if window > 0.0:
            # Equal delivery times on one channel are fine under batching
            # (the batch preserves send order), so no epsilon spacing --
            # otherwise every message in a burst would slip a full window.
            earliest = self._last_delivery_time.get(channel, -1.0)
            delivery_time = max(raw_time, earliest)
            # Quantise *up* so the message is never early; monotone in the
            # raw delivery time, so per-channel FIFO order is preserved.
            delivery_time = math.ceil(delivery_time / window) * window
        elif advance_fifo:
            earliest = self._last_delivery_time.get(channel, -1.0) + self.config.fifo_epsilon
            delivery_time = max(raw_time, earliest)
        else:
            delivery_time = max(raw_time, self._last_delivery_time.get(channel, -1.0))
        if advance_fifo:
            self._last_delivery_time[channel] = delivery_time
        key = (dst, delivery_time)
        batch = self._open_batches.get(key)
        if batch is None:
            self._open_batches[key] = batch = []
            self.stats.delivery_events += 1
            self.sim.schedule_at(
                delivery_time,
                self._deliver_batch,
                key,
                label=f"deliver ->{dst}",
            )
        batch.append((src, payload, size_bytes))
        return delivery_time

    def multicast(
        self, src: str, dsts: Iterable[str], payload: object, size_bytes: int = 0
    ) -> int:
        """Send ``payload`` from ``src`` to every destination in ``dsts``.

        Destinations are contacted in sorted order (deterministic).  Returns
        the number of sends accepted.
        """
        accepted = 0
        for dst in sorted(set(dsts)):
            if self.send(src, dst, payload, size_bytes=size_bytes):
                accepted += 1
        return accepted

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver_batch(self, key: Tuple[str, float]) -> None:
        """Drain one (destination, instant) batch.

        Drop checks (crash, in-flight partition) are still per message --
        a partition installed mid-flight must lose exactly the messages
        that crossed it -- but the scheduling overhead is paid once per
        batch instead of once per message.
        """
        dst = key[0]
        messages = self._open_batches.pop(key, None)
        if not messages:
            return
        journeys = self._journeys
        if dst in self._crashed:
            self.stats.messages_dropped_crash += len(messages)
            if journeys is not None:
                for _, payload, _ in messages:
                    self._journey_drop(payload, "receiver_crashed")
            return
        drop_in_flight = self.config.drop_in_flight_on_partition
        surviving: List[Tuple[str, object, int]] = []
        for src, payload, size_bytes in messages:
            if drop_in_flight and not self.partitions.can_communicate(src, dst):
                self.stats.messages_dropped_partition += 1
                if journeys is not None:
                    self._journey_drop(payload, "partition_in_flight")
                continue
            surviving.append((src, payload, size_bytes))
        if not surviving:
            return
        callback = self._deliver_callbacks.get(dst)
        batch_callback = self._batch_callbacks.get(dst)
        if callback is None and batch_callback is None:
            self.stats.messages_dropped_crash += len(surviving)
            return
        self.stats.messages_delivered += len(surviving)
        self.stats.bytes_delivered += sum(size for _, _, size in surviving)
        if batch_callback is not None:
            batch_callback([(src, payload) for src, payload, _ in surviving])
        else:
            for src, payload, _ in surviving:
                callback(src, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(nodes={len(self._deliver_callbacks)}, crashed={len(self._crashed)}, "
            f"partition={self.partitions.describe()!r})"
        )
