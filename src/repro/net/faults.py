"""Probabilistic link-fault models: message drop, reorder and duplication.

The paper's transport assumes reliable, sequenced (FIFO) channels; the
crash/partition machinery in :mod:`repro.net.failures` breaks *liveness* of
whole nodes or components, but never the per-message behaviour of a link.
A :class:`LinkFaultModel` fills that gap for the scenario fuzzer: every
message crossing the network may independently be

* **dropped** (lost before the latency sample -- receivers simply see a
  silent sender, exactly like a partitioned link),
* **reordered** (held back by an extra random delay *inside* the per-channel
  FIFO clamp -- the jitter a sequenced transport such as TCP shows when the
  wire reorders segments underneath: later traffic on the channel queues
  behind the held message, so channel order is preserved and the protocol's
  FIFO assumption stays intact), or
* **duplicated** (a second copy of the transport frame is delivered later;
  the transport endpoint recognises the stale sequence number and suppresses
  it, as any sequenced transport must).

Rates are global with optional per-directed-link overrides, and every
decision draws from the model's *own* :class:`random.Random` -- never the
simulator's -- so attaching a model with all-zero rates is byte-identical
to no model at all, and runs with faults stay deterministic from
``(simulation seed, fault seed)``.

The model is JSON-shaped for scenario specs::

    {"seed": 3, "drop": 0.02, "reorder": 0.1, "duplicate": 0.05,
     "reorder_delay": [0.5, 2.5],
     "links": [{"src": ["P00"], "dst": ["P01", "P02"], "drop": 0.5}]}

``links`` entries override the global rates for every ``src x dst`` pair
they name; unspecified rates inherit the global values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple


class LinkFaultConfigError(ValueError):
    """A link-fault config dict is malformed (unknown keys, bad rates)."""


@dataclass(frozen=True)
class LinkFaultRates:
    """Per-message fault probabilities on one directed link."""

    drop: float = 0.0
    reorder: float = 0.0
    duplicate: float = 0.0

    def validate(self, where: str) -> "LinkFaultRates":
        for name in ("drop", "reorder", "duplicate"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise LinkFaultConfigError(f"{where}: {name} rate must be a number")
            if not 0.0 <= float(value) <= 1.0:
                raise LinkFaultConfigError(
                    f"{where}: {name} rate must be within [0, 1] (got {value})"
                )
        return self

    @property
    def active(self) -> bool:
        return self.drop > 0.0 or self.reorder > 0.0 or self.duplicate > 0.0

    @property
    def disruptive(self) -> bool:
        """Whether these rates can change what the protocol observes.

        Drops lose messages and reorder delays can outlast suspicion
        timeouts; both can legitimately shrink the stable core a scenario
        may assert agreement over.  Duplicates are absorbed entirely by the
        transport's sequence numbers and never reach the protocol.
        """
        return self.drop > 0.0 or self.reorder > 0.0


#: Keys accepted in the top-level config dict.
_TOP_KEYS = frozenset(
    {"seed", "drop", "reorder", "duplicate", "reorder_delay", "duplicate_delay", "links"}
)
#: Keys accepted in each ``links`` entry.
_LINK_KEYS = frozenset({"src", "dst", "drop", "reorder", "duplicate"})


def _delay_pair(raw, default: Tuple[float, float], name: str) -> Tuple[float, float]:
    if raw is None:
        return default
    if not isinstance(raw, (list, tuple)) or len(raw) != 2:
        raise LinkFaultConfigError(f"{name} must be a [low, high] pair")
    low, high = float(raw[0]), float(raw[1])
    if low < 0.0 or high < low:
        raise LinkFaultConfigError(f"invalid {name} bounds [{low}, {high}]")
    return (low, high)


class LinkFaultModel:
    """Seeded drop/reorder/duplicate faults, global or per directed link."""

    def __init__(
        self,
        drop: float = 0.0,
        reorder: float = 0.0,
        duplicate: float = 0.0,
        reorder_delay: Tuple[float, float] = (0.5, 2.5),
        duplicate_delay: Tuple[float, float] = (0.0, 1.5),
        seed: int = 0,
        links: Optional[Mapping[Tuple[str, str], LinkFaultRates]] = None,
    ) -> None:
        self.global_rates = LinkFaultRates(drop, reorder, duplicate).validate("global")
        self.reorder_delay = _delay_pair(reorder_delay, (0.5, 2.5), "reorder_delay")
        self.duplicate_delay = _delay_pair(duplicate_delay, (0.0, 1.5), "duplicate_delay")
        self.seed = int(seed)
        self.links: Dict[Tuple[str, str], LinkFaultRates] = dict(links or {})
        for (src, dst), rates in self.links.items():
            rates.validate(f"link {src}->{dst}")

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def make_rng(self) -> random.Random:
        """The dedicated decision stream: one per network instance, seeded
        from the model alone so the simulator's randomness is untouched."""
        return random.Random(f"link-faults:{self.seed}")

    def rates_for(self, src: str, dst: str) -> LinkFaultRates:
        return self.links.get((src, dst), self.global_rates)

    @property
    def active(self) -> bool:
        """Whether any rate anywhere is non-zero."""
        return self.global_rates.active or any(
            rates.active for rates in self.links.values()
        )

    def disruptive_processes(self, processes: Iterable[str]) -> Set[str]:
        """Processes whose links can lose or delay messages -- the set a
        scenario must subtract from any stable core it asserts agreement
        over (conservative: one dropped message can stall a whole channel).
        """
        processes = list(processes)
        if self.global_rates.disruptive:
            return set(processes)
        disruptive: Set[str] = set()
        for (src, dst), rates in self.links.items():
            if rates.disruptive:
                disruptive.update((src, dst))
        return disruptive & set(processes)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_config(self) -> Dict[str, object]:
        """The JSON-shaped form, canonical for scenario specs."""
        config: Dict[str, object] = {
            "seed": self.seed,
            "drop": self.global_rates.drop,
            "reorder": self.global_rates.reorder,
            "duplicate": self.global_rates.duplicate,
            "reorder_delay": list(self.reorder_delay),
            "duplicate_delay": list(self.duplicate_delay),
        }
        if self.links:
            config["links"] = [
                {
                    "src": [src],
                    "dst": [dst],
                    "drop": rates.drop,
                    "reorder": rates.reorder,
                    "duplicate": rates.duplicate,
                }
                for (src, dst), rates in sorted(self.links.items())
            ]
        return config

    @classmethod
    def from_config(cls, config: Mapping[str, object]) -> "LinkFaultModel":
        """Build a model from the JSON-shaped dict, validating eagerly."""
        if isinstance(config, LinkFaultModel):
            return config
        if not isinstance(config, Mapping):
            raise LinkFaultConfigError("link_faults must be a mapping")
        unknown = set(config) - _TOP_KEYS
        if unknown:
            raise LinkFaultConfigError(
                f"unknown link_faults keys {sorted(unknown)}; "
                f"expected a subset of {sorted(_TOP_KEYS)}"
            )
        # Validate the raw values -- float() first would silently bless
        # booleans and numeric strings the schema means to reject.
        defaults = LinkFaultRates(
            drop=config.get("drop", 0.0),
            reorder=config.get("reorder", 0.0),
            duplicate=config.get("duplicate", 0.0),
        ).validate("global")
        links: Dict[Tuple[str, str], LinkFaultRates] = {}
        raw_links = config.get("links", ())
        if not isinstance(raw_links, Sequence) or isinstance(raw_links, (str, bytes)):
            raise LinkFaultConfigError("links must be a list of entries")
        for position, entry in enumerate(raw_links):
            where = f"links[{position}]"
            if not isinstance(entry, Mapping):
                raise LinkFaultConfigError(f"{where} must be a mapping")
            unknown = set(entry) - _LINK_KEYS
            if unknown:
                raise LinkFaultConfigError(f"{where}: unknown keys {sorted(unknown)}")
            sources = _name_list(entry.get("src"), f"{where}.src")
            destinations = _name_list(entry.get("dst"), f"{where}.dst")
            rates = LinkFaultRates(
                drop=entry.get("drop", defaults.drop),
                reorder=entry.get("reorder", defaults.reorder),
                duplicate=entry.get("duplicate", defaults.duplicate),
            ).validate(where)
            for src in sources:
                for dst in destinations:
                    if src == dst:
                        continue
                    links[(src, dst)] = rates
        return cls(
            drop=defaults.drop,
            reorder=defaults.reorder,
            duplicate=defaults.duplicate,
            reorder_delay=_delay_pair(
                config.get("reorder_delay"), (0.5, 2.5), "reorder_delay"
            ),
            duplicate_delay=_delay_pair(
                config.get("duplicate_delay"), (0.0, 1.5), "duplicate_delay"
            ),
            seed=int(config.get("seed", 0)),
            links=links,
        )

    def describe(self) -> str:
        rates = self.global_rates
        parts = [
            f"drop={rates.drop}",
            f"reorder={rates.reorder}",
            f"duplicate={rates.duplicate}",
            f"seed={self.seed}",
        ]
        if self.links:
            parts.append(f"links={len(self.links)}")
        return f"link-faults({', '.join(parts)})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def get_link_faults(model) -> Optional[LinkFaultModel]:
    """Resolve ``None``, a model instance, or a JSON-shaped dict."""
    if model is None or isinstance(model, LinkFaultModel):
        return model
    return LinkFaultModel.from_config(model)


def _name_list(raw, where: str) -> List[str]:
    if (
        not isinstance(raw, Sequence)
        or isinstance(raw, (str, bytes))
        or not raw
        or not all(isinstance(name, str) for name in raw)
    ):
        raise LinkFaultConfigError(f"{where} must be a non-empty list of process names")
    return list(raw)
