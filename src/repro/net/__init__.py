"""Simulated asynchronous network substrate for the Newtop reproduction.

The paper assumes an asynchronous communication environment (no bound on
message transmission times), a message transport layer providing
uncorrupted, sequenced (FIFO) transmission between connected, functioning
processes, crash-stop process failures and (real or virtual) network
partitions.  This package provides exactly that environment as a
deterministic, seedable discrete-event simulation:

* :mod:`repro.net.simulator` -- the discrete-event kernel (clock, event
  queue, timers, seeded randomness).
* :mod:`repro.net.latency` -- latency models used to sample per-message
  transmission delays.
* :mod:`repro.net.partitions` -- the partition model (which pairs of nodes
  can currently communicate).
* :mod:`repro.net.network` -- the network fabric gluing latency, partitions
  and crashed-node tracking together.
* :mod:`repro.net.transport` -- the reliable FIFO transport endpoints used
  by protocol processes.
* :mod:`repro.net.failures` -- declarative fault-injection schedules
  (crashes, crash-during-multicast, partitions, heals).
* :mod:`repro.net.faults` -- probabilistic link-fault models (seeded
  per-message drop / reorder / duplicate, global or per directed link),
  the message-level fault space the scenario fuzzer explores.
* :mod:`repro.net.trace` -- the event trace recorder and its pluggable
  sink architecture (in-memory trace, JSONL file writer, rolling metrics
  aggregator, null sink), consumed by the post-hoc and streaming property
  checkers and the benchmark harness.
"""

from repro.net.failures import FailureSchedule, FaultInjector
from repro.net.faults import (
    LinkFaultConfigError,
    LinkFaultModel,
    LinkFaultRates,
    get_link_faults,
)
from repro.net.latency import (
    LATENCY_MODELS,
    ConstantLatency,
    ExponentialLatency,
    JitteredLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
    get_latency_model,
)
from repro.net.network import Network, NetworkConfig, NetworkStats
from repro.net.partitions import PartitionManager
from repro.net.simulator import EventHandle, Simulator, SimulatorError
from repro.net.trace import (
    EventTrace,
    JsonlSink,
    MemorySink,
    MetricsSink,
    NullSink,
    TraceEvent,
    TraceRecorder,
    TraceSink,
)
from repro.net.transport import Endpoint, Transport, TransportMessage

__all__ = [
    "LATENCY_MODELS",
    "ConstantLatency",
    "Endpoint",
    "EventHandle",
    "EventTrace",
    "ExponentialLatency",
    "FailureSchedule",
    "FaultInjector",
    "JitteredLatency",
    "JsonlSink",
    "LatencyModel",
    "LinkFaultConfigError",
    "LinkFaultModel",
    "LinkFaultRates",
    "LogNormalLatency",
    "MemorySink",
    "MetricsSink",
    "Network",
    "NetworkConfig",
    "NetworkStats",
    "NullSink",
    "PartitionManager",
    "Simulator",
    "SimulatorError",
    "TraceEvent",
    "TraceRecorder",
    "TraceSink",
    "Transport",
    "TransportMessage",
    "UniformLatency",
    "get_latency_model",
    "get_link_faults",
]
