"""Low-overhead metrics registry: counters, gauges and histograms.

The registry is the passive half of :mod:`repro.obs` -- instrumented code
holds direct references to :class:`Counter` / :class:`PushGauge` /
:class:`Histogram` objects and bumps plain attributes, so a hot path pays
one attribute increment per event when metrics are enabled and a single
``is None`` check when they are not.  Nothing here ever touches the
simulator's RNG or schedules events, so enabling metrics cannot perturb
seed-determinism.

Two gauge flavours exist because the instrumented quantities come in two
shapes:

* :class:`PolledGauge` wraps a zero-argument callable (``len(heap)``,
  wheel occupancy, in-flight batch depth) that is only evaluated when a
  snapshot or sampler tick asks for it -- zero hot-path cost.
* :class:`PushGauge` is maintained by the instrumented code itself via
  ``adjust(+1/-1)`` at state transitions (a sender becoming blocked /
  unblocked) and remembers its peak.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = [
    "Counter",
    "PolledGauge",
    "PushGauge",
    "Histogram",
    "GaugeRoster",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing count, bumped as ``counter.value += n``."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def snapshot(self) -> int:
        return self.value


class PolledGauge:
    """A gauge evaluated lazily from a callable -- never on the hot path."""

    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        self.name = name
        self._fn = fn

    def read(self) -> float:
        return self._fn()

    def snapshot(self) -> float:
        return self._fn()


class PushGauge:
    """A gauge maintained by the instrumented code at state transitions.

    Tracks the current value and the peak ever seen (the interesting
    number for e.g. "how many senders were blocked at once").
    """

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.peak = 0

    def adjust(self, delta: int) -> None:
        self.value += delta
        if self.value > self.peak:
            self.peak = self.value

    def read(self) -> float:
        return self.value

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value, "peak": self.peak}


class Histogram:
    """A fixed-bucket histogram for small positive integers (batch sizes).

    ``bounds`` are inclusive upper edges; values above the last edge land
    in the overflow bucket.  Recording is one bisect-free loop over a
    handful of edges -- cheap enough for per-batch call sites -- and the
    exact sum/count are kept so the mean never suffers bucket error.
    """

    __slots__ = ("name", "bounds", "buckets", "overflow", "count", "total", "max")

    def __init__(self, name: str, bounds: Optional[List[int]] = None) -> None:
        self.name = name
        self.bounds = list(bounds) if bounds is not None else [1, 2, 4, 8, 16, 32, 64, 128]
        self.buckets = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for index, edge in enumerate(self.bounds):
            if value <= edge:
                self.buckets[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": round(self.mean, 4),
            "max": self.max,
            "buckets": {
                **{f"le_{edge}": hits for edge, hits in zip(self.bounds, self.buckets)},
                "overflow": self.overflow,
            },
        }


class GaugeRoster:
    """A polled gauge summed over many contributors.

    Per-entity gauges would explode at 10k-process scale (one column per
    process in every sampler tick); a roster keeps one aggregate gauge and
    lets each entity register a cheap callable (e.g. a bound
    ``pending_count`` method) at construction time.  Contributors are never
    removed -- a crashed process's frozen queue keeps contributing its last
    depth, which is the honest reading (those messages are still buffered).
    """

    __slots__ = ("_fns",)

    def __init__(self) -> None:
        self._fns: List[Callable[[], float]] = []

    def add(self, fn: Callable[[], float]) -> None:
        self._fns.append(fn)

    def read(self) -> float:
        return sum(fn() for fn in self._fns)


class MetricsRegistry:
    """The per-run namespace of instruments.

    Instrumented modules call ``registry.counter("sim.events_fired")``
    once at construction time and keep the returned object; repeated
    registrations of the same name return the same instrument so wiring
    order never matters.  ``snapshot()`` evaluates every polled gauge and
    returns a plain JSON-able dict grouped by instrument type.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._polled: Dict[str, PolledGauge] = {}
        self._push: Dict[str, PushGauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._rosters: Dict[str, GaugeRoster] = {}

    # -- registration --------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str, fn: Callable[[], float]) -> PolledGauge:
        instrument = self._polled.get(name)
        if instrument is None:
            instrument = self._polled[name] = PolledGauge(name, fn)
        return instrument

    def push_gauge(self, name: str) -> PushGauge:
        instrument = self._push.get(name)
        if instrument is None:
            instrument = self._push[name] = PushGauge(name)
        return instrument

    def histogram(self, name: str, bounds: Optional[List[int]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    def sum_gauge(self, name: str) -> GaugeRoster:
        """A :class:`GaugeRoster` published as the polled gauge ``name``."""
        roster = self._rosters.get(name)
        if roster is None:
            roster = self._rosters[name] = GaugeRoster()
            self.gauge(name, roster.read)
        return roster

    # -- reading -------------------------------------------------------
    def family(self, prefix: str) -> Dict[str, int]:
        """Counters under ``prefix``, keyed by the suffix after it.

        ``family("transport.sends_by_cause.")`` returns the live per-cause
        send counts -- the journey tracker embeds them in its snapshot, and
        tests assert the family sums to the ``transport.sends`` total.
        """
        return {
            name[len(prefix):]: counter.value
            for name, counter in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def read_gauges(self) -> Dict[str, float]:
        """Current value of every gauge (polled evaluated now)."""
        values: Dict[str, float] = {}
        for name, gauge in self._polled.items():
            values[name] = gauge.read()
        for name, gauge in self._push.items():
            values[name] = gauge.read()
        return values

    def read_counters(self) -> Dict[str, int]:
        return {name: counter.value for name, counter in self._counters.items()}

    def snapshot(self) -> Dict[str, object]:
        """One JSON-able snapshot of every instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {
                **{name: g.read() for name, g in sorted(self._polled.items())},
                **{name: g.snapshot() for name, g in sorted(self._push.items())},
            },
            "histograms": {name: h.snapshot() for name, h in sorted(self._histograms.items())},
        }
