"""Simulated-time periodic sampling of the metrics registry.

The sampler turns the registry's instantaneous instruments into a compact
*columnar* time series: one tick every ``interval`` simulated time units
snapshots every counter and gauge.  Counters are stored cumulatively --
interval deltas (null vs app traffic per interval, the messages-per-delivery
curve for ROADMAP item 1) are derived at snapshot/report time, never on the
hot path.

Determinism: the sampler schedules ordinary simulator events, which shifts
the kernel's internal sequence numbers but draws nothing from the RNG and
records nothing to the trace, so the *trace event stream* of an observed run
is byte-identical to an unobserved one (pinned by
``tests/test_hot_path_equivalence.py``).  To keep ``sim.run()`` (no bound)
able to drain, a tick that finds no other live event *parks* instead of
rescheduling; :meth:`SimTimeSampler.ensure_running` (called by
``Session.run``/``run_until``) resumes it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.net.trace import TraceEvent, TraceSink
from repro.obs.metrics import MetricsRegistry

__all__ = ["SimTimeSampler", "TraceCounterSink"]


class TraceCounterSink(TraceSink):
    """Mirrors trace-event kinds into registry counters (``trace.<kind>``).

    This is what feeds the sampler's null-vs-app traffic series: the
    :class:`~repro.net.trace.MetricsSink` aggregates totals for the final
    report, but the sampler needs *registry* counters so per-interval deltas
    fall out of the columnar snapshot.  One dict lookup + int increment per
    event; only installed when observation is enabled.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._counters: Dict[str, Any] = {}

    def on_event(self, event: TraceEvent) -> None:
        counter = self._counters.get(event.kind)
        if counter is None:
            counter = self._counters[event.kind] = self._registry.counter(
                "trace." + event.kind
            )
        counter.value += 1


class SimTimeSampler:
    """Samples every registry instrument at a fixed simulated-time period."""

    def __init__(self, registry: MetricsRegistry, interval: float = 5.0) -> None:
        if interval <= 0:
            raise ValueError("sampler interval must be positive")
        self.registry = registry
        self.interval = interval
        self.times: List[float] = []
        self.counter_columns: Dict[str, List[int]] = {}
        self.gauge_columns: Dict[str, List[float]] = {}
        self._sim = None
        self._pending = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim) -> None:
        """Bind to a simulator; the first tick fires one interval in."""
        self._sim = sim
        self.ensure_running()

    def ensure_running(self) -> None:
        """(Re)schedule the next tick if the sampler is parked.

        Called at every ``Session.run``/``run_until`` entry: a parked
        sampler (it found the queue otherwise empty) wakes up again as soon
        as the caller is about to push more simulated time through.
        """
        if self._sim is None or self._pending:
            return
        self._pending = True
        self._sim.schedule(self.interval, self._tick, label="obs:sample")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_now(self) -> None:
        """Record one sample at the current instant (also used at close)."""
        sim = self._sim
        if sim is None:
            return
        self.times.append(sim.now)
        width = len(self.times)
        for name, value in self.registry.read_counters().items():
            column = self.counter_columns.get(name)
            if column is None:
                # Backfill instruments that appeared after sampling started.
                column = self.counter_columns[name] = [0] * (width - 1)
            column.append(value)
        for name, value in self.registry.read_gauges().items():
            gauge_column = self.gauge_columns.get(name)
            if gauge_column is None:
                gauge_column = self.gauge_columns[name] = [0.0] * (width - 1)
            gauge_column.append(value)

    def _tick(self) -> None:
        self._pending = False
        self.sample_now()
        sim = self._sim
        # Park when nothing else is pending: a sampler that kept
        # rescheduling itself would make ``sim.run()`` spin forever.
        if sim is not None and sim.live_pending_events > 0:
            self.ensure_running()

    # ------------------------------------------------------------------
    # Derived series
    # ------------------------------------------------------------------
    def _deltas(self, name: str) -> List[int]:
        column = self.counter_columns.get(name)
        if not column:
            return []
        return [column[0]] + [b - a for a, b in zip(column, column[1:])]

    def messages_per_delivery_series(self) -> List[Optional[float]]:
        """Transport messages sent per application delivery, per interval.

        The ROADMAP item-1 baseline: how many messages (nulls included) the
        system pushed for each useful delivery in each interval.  ``None``
        marks intervals with no deliveries (idle tail / formation).
        """
        sent_names = [
            name for name in self.counter_columns if name.startswith("transport.sent.")
        ]
        if sent_names:
            sent_per_interval = [
                sum(parts) for parts in zip(*(self._deltas(name) for name in sent_names))
            ]
        else:
            sends = self._deltas("trace.send")
            nulls = self._deltas("trace.null_send")
            if not sends and not nulls:
                return []
            if not sends:
                sends = [0] * len(nulls)
            if not nulls:
                nulls = [0] * len(sends)
            sent_per_interval = [a + b for a, b in zip(sends, nulls)]
        deliveries = self._deltas("trace.deliver")
        series: List[Optional[float]] = []
        for index, sent in enumerate(sent_per_interval):
            delivered = deliveries[index] if index < len(deliveries) else 0
            series.append(round(sent / delivered, 3) if delivered else None)
        return series

    def snapshot(self) -> Dict[str, object]:
        """The columnar series plus derived curves, JSON-shaped."""
        return {
            "interval": self.interval,
            "times": list(self.times),
            "counters": {name: list(col) for name, col in sorted(self.counter_columns.items())},
            "gauges": {name: list(col) for name, col in sorted(self.gauge_columns.items())},
            "messages_per_delivery": self.messages_per_delivery_series(),
        }
