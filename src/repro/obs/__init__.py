"""``repro.obs`` -- observability for every layer of the reproduction.

One :class:`Observation` object bundles the four instruments:

* a :class:`~repro.obs.metrics.MetricsRegistry` of counters / gauges /
  histograms the simulator, transport, network, suspector and flow
  controller report into (they pay a single ``is None`` check when
  observation is off);
* a :class:`~repro.obs.sampler.SimTimeSampler` snapshotting the registry
  every few simulated time units into a columnar time series
  (null-vs-app traffic per interval, messages-per-delivery curves);
* a :class:`~repro.obs.profiler.HotPathProfiler` attributing wall clock
  to callback categories (timer fire, delivery batch, protocol receive,
  sink fan-out);
* a :class:`~repro.obs.spans.SpanBreakdownSink` computing per-message
  lifecycle breakdowns (transit / ordering wait / latency / spread) as
  exact reservoirs;
* a :class:`~repro.obs.journey.JourneyTracker` sampling a deterministic
  1-in-N subset of message ids and recording each one's full lifecycle
  (created -> sent -> received -> held -> sequenced -> delivered |
  discarded) with per-(cause, wait-state) latency reservoirs, alongside
  the transport's ``transport.sends_by_cause.*`` root-cause counters.

Usage::

    session = Session("newtop", observe=True)       # metrics + sampler
    session = Session("newtop", observe="journeys") # + journey tracing
    session = Session("newtop", observe="full")     # + profiler + spans + journeys
    ...
    result = session.result()
    print(render_obs(result.obs))

The contract, pinned by ``tests/test_hot_path_equivalence.py``: observing
a run never changes its behaviour -- no RNG draws, no trace events, no
protocol decisions -- so the trace event stream is byte-identical with
observation on or off.

``python -m repro.obs report BENCH_file.json`` renders any benchmark JSON
(or result dump) containing ``obs`` blocks into a readable report.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.net.trace import TraceSink
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    PolledGauge,
    PushGauge,
)
from repro.obs.journey import JourneyTracker
from repro.obs.profiler import HotPathProfiler
from repro.obs.report import render_document, render_obs
from repro.obs.sampler import SimTimeSampler, TraceCounterSink
from repro.obs.spans import SpanBreakdownSink

__all__ = [
    "Observation",
    "MetricsRegistry",
    "Counter",
    "PolledGauge",
    "PushGauge",
    "Histogram",
    "SimTimeSampler",
    "TraceCounterSink",
    "HotPathProfiler",
    "JourneyTracker",
    "SpanBreakdownSink",
    "render_obs",
    "render_document",
]


class Observation:
    """One run's observation bundle; coerced from the ``observe=`` argument.

    ``observe=True`` enables the cheap instruments (registry + sampler);
    ``observe="full"`` adds the wall-clock profiler and the span sink;
    a mapping passes keyword arguments straight through (e.g.
    ``observe={"profiler": True, "sample_interval": 2.0}``); an existing
    :class:`Observation` is used as-is (callers may pre-build one to read
    instruments mid-run).
    """

    def __init__(
        self,
        *,
        metrics: bool = True,
        sampler: bool = True,
        profiler: bool = False,
        spans: bool = False,
        journeys: bool = False,
        sample_interval: float = 5.0,
        spans_max_tracked: int = 100_000,
        journey_sample_rate: int = 64,
        journey_seed: int = 0,
        journey_max_tracked: int = 512,
        journey_force_ids=None,
        top_n: int = 10,
    ) -> None:
        # The registry always exists: the sampler and the trace counters
        # feed from it, and instrumented layers only check one attribute.
        self.registry = MetricsRegistry()
        self.metrics_enabled = metrics
        self.sampler: Optional[SimTimeSampler] = (
            SimTimeSampler(self.registry, interval=sample_interval) if sampler else None
        )
        self.profiler: Optional[HotPathProfiler] = HotPathProfiler() if profiler else None
        self.spans: Optional[SpanBreakdownSink] = (
            SpanBreakdownSink(max_tracked=spans_max_tracked) if spans else None
        )
        self.journeys: Optional[JourneyTracker] = (
            JourneyTracker(
                self.registry,
                sample_rate=journey_sample_rate,
                seed=journey_seed,
                max_tracked=journey_max_tracked,
                force_ids=journey_force_ids,
            )
            if journeys
            else None
        )
        self._trace_counters = TraceCounterSink(self.registry)
        self.top_n = top_n
        self._sim = None

    # ------------------------------------------------------------------
    # Coercion
    # ------------------------------------------------------------------
    @staticmethod
    def coerce(value: Any) -> Optional["Observation"]:
        """Normalize a user-facing ``observe=`` value (None/bool/str/dict)."""
        if value is None or value is False:
            return None
        if isinstance(value, Observation):
            return value
        if value is True:
            return Observation()
        if isinstance(value, str):
            if value == "full":
                return Observation(profiler=True, spans=True, journeys=True)
            if value == "journeys":
                return Observation(journeys=True)
            if value in ("metrics", "true", "on"):
                return Observation()
            raise ValueError(f"unknown observe mode {value!r} (try True or 'full')")
        if isinstance(value, Mapping):
            return Observation(**value)
        raise ValueError(f"cannot interpret observe={value!r}")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def trace_sinks(self) -> List[TraceSink]:
        """The sinks to register on the run's :class:`TraceRecorder`."""
        sinks: List[TraceSink] = [self._trace_counters]
        if self.spans is not None:
            sinks.append(self.spans)
        return sinks

    def bind(self, sim) -> None:
        """Attach the sampler to the run's simulator (idempotent)."""
        self._sim = sim
        if self.sampler is not None:
            self.sampler.attach(sim)

    def ensure_sampling(self) -> None:
        """Un-park the sampler; call before pushing more simulated time."""
        if self.sampler is not None:
            self.sampler.ensure_running()

    def finalize(self) -> None:
        """Take the closing sample and seal the span reservoirs."""
        sampler = self.sampler
        if sampler is not None and self._sim is not None:
            if not sampler.times or sampler.times[-1] < self._sim.now:
                sampler.sample_now()
        if self.spans is not None:
            self.spans.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The JSON-able ``obs`` block embedded in results and BENCH files."""
        self.finalize()
        block: Dict[str, object] = {"metrics": self.registry.snapshot()}
        if self.sampler is not None:
            block["samples"] = self.sampler.snapshot()
        if self.profiler is not None:
            block["profile"] = self.profiler.snapshot(self.top_n)
        if self.spans is not None:
            block["spans"] = self.spans.snapshot()
        if self.journeys is not None:
            block["journeys"] = self.journeys.snapshot(self.top_n)
        return block
