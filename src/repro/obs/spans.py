"""Per-message lifecycle breakdowns as exact reservoirs (Dapper-style).

The paper argues about the send → sequenced → delivered → stable lifecycle
of a multicast.  The trace stream deliberately records no extra event kinds
for observation (adding kinds would change the event stream and break the
seed-identity contract), so :class:`SpanBreakdownSink` maps the lifecycle
onto the events that already exist:

* ``transit``       -- send → *first* receive anywhere (network + transport
  batching; in an asymmetric group this includes the sequencer hop, i.e.
  the paper's "sequenced" stage rides inside it).
* ``ordering_wait`` -- receive → deliver at the *same* process (the
  logical-clock / sequencer-number gating delay: time a message sat
  deliverable-pending in the queue).
* ``latency``       -- send → each deliver (end-to-end, per delivery).
* ``spread``        -- first deliver → last deliver of a message (the
  stability proxy: once every member delivered, the message is stable in
  the §4 sense).

Each stage is an exact-until-capacity mergeable
:class:`~repro.stats.LatencyReservoir`.  Memory is bounded: at most
``max_tracked`` distinct message ids are followed (later sends count into
``dropped_messages``), and per-(message, process) receive entries are
popped on delivery.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.net.trace import DELIVER, RECEIVE, SEND, TraceEvent, TraceSink
from repro.stats import LatencyReservoir

__all__ = ["SpanBreakdownSink", "STAGES"]

STAGES = ("transit", "ordering_wait", "latency", "spread")

#: Percentiles carried per stage in snapshots (matches the bench schema).
_PERCENTILES = (50, 95, 99)


class SpanBreakdownSink(TraceSink):
    """Streams trace events into per-stage latency reservoirs."""

    def __init__(self, max_tracked: int = 100_000) -> None:
        self.max_tracked = max_tracked
        self.dropped_messages = 0
        self.stages: Dict[str, LatencyReservoir] = {
            name: LatencyReservoir() for name in STAGES
        }
        self._send_time: Dict[str, float] = {}
        self._first_receive_seen: set = set()
        self._receive_time: Dict[Tuple[str, str], float] = {}
        self._deliver_window: Dict[str, Tuple[float, float]] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # TraceSink interface
    # ------------------------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        kind = event.kind
        message_id = event.message_id
        if message_id is None:
            return
        if kind == SEND:
            if message_id in self._send_time:
                return  # re-send under the original id keeps the first clock
            if len(self._send_time) >= self.max_tracked:
                self.dropped_messages += 1
                return
            self._send_time[message_id] = event.time
        elif kind == RECEIVE:
            send_time = self._send_time.get(message_id)
            if send_time is None:
                return
            if message_id not in self._first_receive_seen:
                self._first_receive_seen.add(message_id)
                self.stages["transit"].add(event.time - send_time)
            self._receive_time.setdefault((message_id, event.process), event.time)
        elif kind == DELIVER:
            receive_time = self._receive_time.pop((message_id, event.process), None)
            if receive_time is not None:
                self.stages["ordering_wait"].add(event.time - receive_time)
            send_time = self._send_time.get(message_id)
            if send_time is None:
                return
            self.stages["latency"].add(event.time - send_time)
            window = self._deliver_window.get(message_id)
            if window is None:
                self._deliver_window[message_id] = (event.time, event.time)
            else:
                self._deliver_window[message_id] = (window[0], max(window[1], event.time))

    def close(self) -> None:
        """Finalize ``spread``: it needs each message's *last* delivery."""
        if self._closed:
            return
        self._closed = True
        spread = self.stages["spread"]
        for first, last in self._deliver_window.values():
            spread.add(last - first)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def tracked_messages(self) -> int:
        return len(self._send_time)

    def snapshot(self) -> Dict[str, object]:
        self.close()
        stages: Dict[str, Optional[Dict[str, object]]] = {}
        for name in STAGES:
            reservoir = self.stages[name]
            if reservoir.count == 0:
                stages[name] = None
                continue
            stages[name] = reservoir.summary(percentiles=_PERCENTILES)
        return {
            "tracked_messages": self.tracked_messages,
            "dropped_messages": self.dropped_messages,
            "stages": stages,
        }
