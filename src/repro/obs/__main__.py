"""CLI: render observation reports from benchmark / result JSON files.

Usage::

    python -m repro.obs report BENCH_single_scale.json
    python -m repro.obs report BENCH_a.json BENCH_b.json   # side by side
    python -m repro.obs journey BENCH_scenario_churn.json

``report`` renders header + every embedded ``obs`` block (and fuzz
campaign tallies / repro artifacts); ``journey`` is the journey explorer:
slowest sampled journeys as span trees plus the by-cause and
by-wait-state breakdowns.  Multiple files render side-by-side for
comparison.  User errors (missing file, invalid JSON, nothing to render)
exit non-zero with a one-line message, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.report import (
    document_has_journeys,
    document_has_renderable_content,
    paste_columns,
    render_document,
    render_journey_document,
)


class _CliError(Exception):
    """A user-facing one-line error; ``code`` becomes the exit status."""

    def __init__(self, message: str, code: int = 2) -> None:
        super().__init__(message)
        self.code = code


def _load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise _CliError(f"cannot read {path}: {error.strerror or error}")
    except ValueError as error:
        raise _CliError(f"{path} is not valid JSON: {error}")
    if not isinstance(document, dict):
        raise _CliError(
            f"{path}: expected a JSON object, got {type(document).__name__}"
        )
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render human-readable reports from bench/result JSONs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report = subparsers.add_parser("report", help="render one or more JSON files")
    report.add_argument("files", nargs="+", help="BENCH_*.json or result dumps")
    journey = subparsers.add_parser(
        "journey", help="render sampled message journeys (span trees + breakdowns)"
    )
    journey.add_argument("files", nargs="+", help="BENCH_*.json or fuzz artifacts")
    args = parser.parse_args(argv)

    try:
        documents = [(path, _load(path)) for path in args.files]
        names = ", ".join(args.files)
        if args.command == "journey":
            if not any(document_has_journeys(doc) for _, doc in documents):
                raise _CliError(
                    f"no journeys in {names} -- rerun the benchmark with "
                    "--observe journeys (or full)",
                    code=1,
                )
            rendered = [
                render_journey_document(doc, source=path) for path, doc in documents
            ]
        else:
            if not any(document_has_renderable_content(doc) for _, doc in documents):
                raise _CliError(
                    f"no obs blocks in {names} -- rerun the benchmark with "
                    "--observe (or --observe full)",
                    code=1,
                )
            rendered = [render_document(doc, source=path) for path, doc in documents]
    except _CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.code

    output = rendered[0] if len(rendered) == 1 else paste_columns(rendered)
    try:
        print(output)
    except BrokenPipeError:
        # Piping into `head` closes stdout early; that is not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
