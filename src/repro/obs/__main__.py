"""CLI: render observation reports from benchmark / result JSON files.

Usage::

    python -m repro.obs report BENCH_single_scale.json
    python -m repro.obs report BENCH_scenario_churn.json BENCH_workload_sweep.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.report import render_document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render human-readable reports from bench/result JSONs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report = subparsers.add_parser("report", help="render one or more JSON files")
    report.add_argument("files", nargs="+", help="BENCH_*.json or result dumps")
    args = parser.parse_args(argv)

    first = True
    try:
        for path in args.files:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            if not first:
                print()
            first = False
            print(render_document(document, source=path))
    except BrokenPipeError:
        # Piping into `head` closes stdout early; that is not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
