"""Sampled per-message journey tracing (the ``repro.obs.journey`` tentpole).

A *journey* is one message's lifecycle, recorded as timestamped state
transitions::

    created -> [blocked_send] -> [sent_to_sequencer -> sequenced]
            -> received (per destination) -> [held[reason] -> released]
            -> delivered | discarded[reason] | wire_dropped

Sampling is deterministic and seeded: a message is tracked iff
``(crc32(msg_id) ^ mix(seed)) % sample_rate == 0``, so the *same* message
ids are sampled across runs with the same seed and no simulation RNG is
ever drawn -- tracing stays behaviour-free (the trace stream is pinned
byte-identical in ``tests/test_hot_path_equivalence.py``).  ``force_ids``
pins specific messages regardless of sampling; the fuzz shrinker uses it
to embed the journeys of messages implicated in a violation into its
repro artifacts.

Every tracked transition also feeds an exact
:class:`~repro.stats.LatencyReservoir` keyed by ``(cause, wait_state)``,
so delivery latency decomposes into blocked-send / sequencer-queue /
transit / suspicion-hold / causal-hold components per root cause.  The
cause vocabulary itself (``app_multicast``, ``null_time_silence``,
``suspicion_gossip``, ``confirm_refute``, ``formation``,
``failover_resend``, ``view_cut``, ``other``) is assigned at the send
sites and counted by the transport into ``transport.sends_by_cause.*``
counters that exactly partition ``transport.sends``.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.stats import LatencyReservoir

__all__ = ["JourneyTracker", "WAIT_STATES", "payload_msg_id"]

#: Wait-state reservoir keys, in rendering order.
WAIT_STATES = (
    "blocked_send",     # deferred behind the send-blocking rule / formation
    "sequencer_queue",  # request sent -> sequenced copy multicast
    "transit",          # network transit, one sample per wire receipt
    "suspicion_hold",   # parked pending suspicion resolution (rule (ii))
    "causal_hold",      # receipt -> delivery (causal/total-order wait)
    "latency",          # end to end: created -> delivered
)

#: Transitions kept per journey before truncation (bounds memory at scale).
MAX_TRANSITIONS = 64


def payload_msg_id(payload: object) -> Optional[str]:
    """The stable journey identity of a protocol payload, if it has one.

    ``DataMessage`` carries ``msg_id``; ``SequencerRequest`` carries
    ``request_id`` (reused as the sequenced message's ``msg_id``, so one
    journey spans request and sequenced copy).  Anything else -- membership
    and formation control traffic -- has no stable identity and is covered
    by cause attribution only.
    """
    msg_id = getattr(payload, "msg_id", None)
    if msg_id is not None:
        return msg_id
    return getattr(payload, "request_id", None)


class _Journey:
    """One tracked message's recorded lifecycle."""

    __slots__ = (
        "msg_id", "cause", "sender", "group", "created_at", "transitions",
        "truncated", "receive_at", "hold_since", "sequencer_wait_from",
        "deliveries", "max_latency", "forced",
    )

    def __init__(self, msg_id, cause, sender, group, created_at, forced):
        self.msg_id = msg_id
        self.cause = cause
        self.sender = sender
        self.group = group
        self.created_at = created_at
        self.transitions: List[Tuple[str, float, Optional[str], Optional[str]]] = []
        self.truncated = 0
        self.receive_at: Dict[str, float] = {}
        self.hold_since: Dict[str, float] = {}
        self.sequencer_wait_from: Optional[float] = None
        self.deliveries = 0
        self.max_latency: Optional[float] = None
        self.forced = forced

    def record(self, state, time, process, detail=None):
        if len(self.transitions) >= MAX_TRANSITIONS:
            self.truncated += 1
            return
        self.transitions.append((state, time, process, detail))

    def as_dict(self) -> Dict[str, object]:
        return {
            "msg_id": self.msg_id,
            "cause": self.cause,
            "sender": self.sender,
            "group": self.group,
            "created_at": self.created_at,
            "deliveries": self.deliveries,
            "latency": self.max_latency,
            "truncated_transitions": self.truncated,
            "transitions": [list(transition) for transition in self.transitions],
        }


class JourneyTracker:
    """Deterministically-sampled per-message lifecycle tracker.

    Attached as ``sim.journeys``; every protocol hook pays one ``is None``
    check when tracing is off and one dict lookup for untracked messages
    when it is on.  The tracker never touches the simulation RNG.
    """

    def __init__(
        self,
        registry,
        sample_rate: int = 64,
        seed: int = 0,
        max_tracked: int = 512,
        force_ids: Optional[Iterable[str]] = None,
    ) -> None:
        self.registry = registry
        self.sample_rate = max(1, int(sample_rate))
        self.seed = seed
        self.max_tracked = max_tracked
        self.force_ids = frozenset(force_ids or ())
        self._seed_mix = zlib.crc32(repr(seed).encode("utf-8"))
        self._journeys: Dict[str, _Journey] = {}
        self._reservoirs: Dict[Tuple[str, str], LatencyReservoir] = {}
        self._c_tracked = registry.counter("journeys.tracked")
        self._c_skipped = registry.counter("journeys.skipped")
        self._c_overflow = registry.counter("journeys.overflow")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def wants(self, msg_id: str) -> bool:
        """Deterministic sampling decision (no RNG, stable across runs)."""
        if msg_id in self.force_ids:
            return True
        digest = zlib.crc32(msg_id.encode("utf-8")) ^ self._seed_mix
        return digest % self.sample_rate == 0

    def _get(self, msg_id: Optional[str]) -> Optional[_Journey]:
        if msg_id is None:
            return None
        return self._journeys.get(msg_id)

    def _sample(self, journey: _Journey, stage: str, value: float) -> None:
        key = (journey.cause, stage)
        reservoir = self._reservoirs.get(key)
        if reservoir is None:
            seed = zlib.crc32(("%s/%s" % key).encode("utf-8")) ^ self._seed_mix
            reservoir = self._reservoirs[key] = LatencyReservoir(seed=seed)
        reservoir.add(value)

    # ------------------------------------------------------------------
    # Lifecycle hooks (called from the protocol layers)
    # ------------------------------------------------------------------
    def created(self, msg_id, cause, sender, group, now) -> None:
        """A message with a stable id came into existence at its origin."""
        if msg_id in self._journeys:
            return
        if not self.wants(msg_id):
            self._c_skipped.value += 1
            return
        forced = msg_id in self.force_ids
        if len(self._journeys) >= self.max_tracked and not forced:
            self._c_overflow.value += 1
            return
        journey = _Journey(msg_id, cause, sender, group, now, forced)
        journey.record("created", now, sender, cause)
        self._journeys[msg_id] = journey
        self._c_tracked.value += 1

    def blocked_send(self, msg_id, now, process, blocked_for) -> None:
        """The message just left the deferred-send queue after ``blocked_for``
        simulated seconds behind the send-blocking rule."""
        journey = self._get(msg_id)
        if journey is None:
            return
        self._sample(journey, "blocked_send", blocked_for)
        journey.record("unblocked", now, process, blocked_for)

    def sent_to_sequencer(self, msg_id, now, sequencer) -> None:
        journey = self._get(msg_id)
        if journey is None:
            return
        journey.sequencer_wait_from = now
        journey.record("sent_to_sequencer", now, journey.sender, sequencer)

    def sequenced(self, msg_id, now, sequencer) -> None:
        journey = self._get(msg_id)
        if journey is None:
            return
        if journey.sequencer_wait_from is not None:
            self._sample(journey, "sequencer_queue", now - journey.sequencer_wait_from)
            journey.sequencer_wait_from = None
        journey.record("sequenced", now, sequencer)

    def received(self, msg_id, now, process, sent_at) -> None:
        """First wire receipt of the message at ``process``."""
        journey = self._get(msg_id)
        if journey is None or process in journey.receive_at:
            return
        journey.receive_at[process] = now
        self._sample(journey, "transit", now - sent_at)
        journey.record("received", now, process)

    def transport_received(self, wire_message, now, process) -> None:
        """Receipt hook taking the transport envelope (extracts the id)."""
        payload = getattr(wire_message, "payload", None)
        msg_id = payload_msg_id(payload) if payload is not None else None
        if msg_id is not None:
            self.received(msg_id, now, process, wire_message.sent_at)

    def held(self, msg_id, now, process, reason) -> None:
        journey = self._get(msg_id)
        if journey is None:
            return
        journey.hold_since[process] = now
        journey.record("held", now, process, reason)

    def released(self, msg_id, now, process) -> None:
        journey = self._get(msg_id)
        if journey is None:
            return
        since = journey.hold_since.pop(process, None)
        if since is None:
            return
        self._sample(journey, "suspicion_hold", now - since)
        journey.record("released", now, process)

    def released_payload(self, payload, now, process) -> None:
        self.released(payload_msg_id(payload), now, process)

    def delivered(self, msg_id, now, process) -> None:
        journey = self._get(msg_id)
        if journey is None:
            return
        base = journey.receive_at.get(process, journey.created_at)
        self._sample(journey, "causal_hold", now - base)
        latency = now - journey.created_at
        self._sample(journey, "latency", latency)
        journey.deliveries += 1
        if journey.max_latency is None or latency > journey.max_latency:
            journey.max_latency = latency
        journey.record("delivered", now, process)

    def discarded(self, msg_id, now, process, reason) -> None:
        journey = self._get(msg_id)
        if journey is None:
            return
        journey.record("discarded", now, process, reason)

    def discarded_payload(self, payload, now, process, reason) -> None:
        self.discarded(payload_msg_id(payload), now, process, reason)

    def wire_dropped(self, wire_message, now, reason) -> None:
        """The network dropped the envelope (crash/partition/filter/fault)."""
        payload = getattr(wire_message, "payload", None)
        msg_id = payload_msg_id(payload) if payload is not None else None
        journey = self._get(msg_id)
        if journey is None:
            return
        journey.record("wire_dropped", now, getattr(wire_message, "dst", None), reason)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def journey(self, msg_id: str) -> Optional[Dict[str, object]]:
        journey = self._journeys.get(msg_id)
        return journey.as_dict() if journey is not None else None

    def snapshot(self, top_n: int = 10) -> Dict[str, object]:
        """The JSON-able ``journeys`` block embedded in ``obs`` snapshots."""
        wait_states: Dict[str, Dict[str, object]] = {}
        for (cause, stage), reservoir in sorted(self._reservoirs.items()):
            wait_states.setdefault(cause, {})[stage] = reservoir.summary()
        by_cause: Dict[str, int] = {}
        for journey in self._journeys.values():
            by_cause[journey.cause] = by_cause.get(journey.cause, 0) + 1
        completed = [j for j in self._journeys.values() if j.max_latency is not None]
        completed.sort(key=lambda j: (-j.max_latency, j.msg_id))
        forced = sorted(
            (j for j in self._journeys.values() if j.forced),
            key=lambda j: j.msg_id,
        )
        return {
            "sample_rate": self.sample_rate,
            "seed": self.seed,
            "tracked": self._c_tracked.value,
            "skipped": self._c_skipped.value,
            "overflow": self._c_overflow.value,
            "sends_by_cause": self.registry.family("transport.sends_by_cause."),
            "by_cause": dict(sorted(by_cause.items())),
            "wait_states": wait_states,
            "slowest": [j.as_dict() for j in completed[:top_n]],
            "forced": [j.as_dict() for j in forced],
        }
