"""Human-readable rendering of observation snapshots and bench JSONs.

``render_obs`` turns one observation snapshot (the ``obs`` block a
:class:`~repro.obs.Observation` emits) into aligned text tables;
``render_document`` walks any JSON document produced by the benchmark
harness (session results, scenario shards, sweep grids, BENCH files,
fuzz-campaign JSONs and fuzz-repro artifacts), renders its header, and
finds every embedded ``obs`` block wherever it rides.
``render_journey_document`` is the journey explorer: the slowest sampled
journeys as span trees plus the by-cause / by-wait-state breakdown.
``python -m repro.obs report FILE`` and ``python -m repro.obs journey
FILE`` are the CLI front ends.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "render_obs",
    "render_document",
    "render_journey_document",
    "find_obs_blocks",
    "document_has_renderable_content",
    "document_has_journeys",
    "paste_columns",
]

_BAR_WIDTH = 30
_BLOCKS = " ▁▂▃▄▅▆▇█"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.5f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _table(rows: List[Tuple[str, ...]], indent: str = "  ") -> List[str]:
    if not rows:
        return []
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for row in rows:
        cells = [cell.ljust(width) for cell, width in zip(row, widths)]
        lines.append(indent + "  ".join(cells).rstrip())
    return lines


def _sparkline(values: List[Optional[float]]) -> str:
    """One-character-per-sample curve; gaps (``None``) render as ``.``."""
    present = [value for value in values if value is not None]
    if not present:
        return ""
    low, high = min(present), max(present)
    span = (high - low) or 1.0
    chars = []
    for value in values:
        if value is None:
            chars.append(".")
        else:
            chars.append(_BLOCKS[1 + int((value - low) / span * (len(_BLOCKS) - 2))])
    return "".join(chars)


# ----------------------------------------------------------------------
# Section renderers
# ----------------------------------------------------------------------
def _render_metrics(metrics: Mapping[str, Any]) -> List[str]:
    lines = ["metrics"]
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("  counters")
        lines.extend(_table([(name, _fmt(value)) for name, value in counters.items()], "    "))
    gauges = metrics.get("gauges") or {}
    if gauges:
        lines.append("  gauges (at snapshot)")
        rows = []
        for name, value in gauges.items():
            if isinstance(value, Mapping):
                rows.append((name, _fmt(value.get("value")), f"peak {_fmt(value.get('peak'))}"))
            else:
                rows.append((name, _fmt(value), ""))
        lines.extend(_table(rows, "    "))
    histograms = metrics.get("histograms") or {}
    for name, hist in histograms.items():
        lines.append(
            f"  histogram {name}: count={_fmt(hist.get('count'))} "
            f"mean={_fmt(hist.get('mean'))} max={_fmt(hist.get('max'))}"
        )
        buckets = hist.get("buckets") or {}
        total = sum(buckets.values()) or 1
        rows = []
        # JSON round-trips sort keys lexicographically (le_1, le_128,
        # le_16 ...); restore numeric bucket order, overflow last.

        def _edge_key(edge: str) -> Tuple[int, float]:
            if edge.startswith("le_"):
                try:
                    return (0, float(edge[3:]))
                except ValueError:
                    pass
            return (1, 0.0)

        for edge in sorted(buckets, key=_edge_key):
            hits = buckets[edge]
            bar = "#" * int(round(hits / total * _BAR_WIDTH))
            rows.append((edge, _fmt(hits), bar))
        lines.extend(_table(rows, "    "))
    return lines


def _render_samples(samples: Mapping[str, Any]) -> List[str]:
    times = samples.get("times") or []
    lines = [
        f"sampler: {len(times)} samples at interval {_fmt(samples.get('interval'))}"
        + (f" (t={_fmt(times[0])}..{_fmt(times[-1])})" if times else "")
    ]
    curve = samples.get("messages_per_delivery") or []
    present = [value for value in curve if value is not None]
    if present:
        lines.append("  messages per delivery over time (ROADMAP item 1 baseline)")
        lines.append(f"    {_sparkline(curve)}")
        lines.append(
            f"    min={_fmt(min(present))}  max={_fmt(max(present))}  "
            f"last={_fmt(present[-1])}  intervals_with_deliveries={len(present)}/{len(curve)}"
        )
    gauges = samples.get("gauges") or {}
    rows = []
    for name, column in gauges.items():
        if not column:
            continue
        rows.append(
            (name, f"last {_fmt(column[-1])}", f"peak {_fmt(max(column))}",
             _sparkline(list(column)))
        )
    if rows:
        lines.append("  gauge series")
        lines.extend(_table(rows, "    "))
    return lines


def _render_profile(profile: Mapping[str, Any]) -> List[str]:
    lines = [f"profiler: {_fmt(profile.get('total_seconds'))}s attributed wall time"]
    sections = profile.get("sections") or {}
    top = profile.get("top") or []
    if top:
        lines.append("  top hotspots")
        rows = []
        for entry in top:
            name = entry.get("section", "?")
            detail = sections.get(name, {})
            share = detail.get("share")
            rows.append(
                (
                    name,
                    f"{_fmt(entry.get('seconds'))}s",
                    f"{_fmt(detail.get('calls'))} calls",
                    f"{_fmt(detail.get('mean_us'))}us/call",
                    f"{share * 100:.1f}%" if share is not None else "(nested)",
                )
            )
        lines.extend(_table(rows, "    "))
    return lines


def _render_spans(spans: Mapping[str, Any]) -> List[str]:
    lines = [
        f"spans: {_fmt(spans.get('tracked_messages'))} messages tracked"
        + (
            f", {_fmt(spans.get('dropped_messages'))} dropped"
            if spans.get("dropped_messages")
            else ""
        )
    ]
    stages = spans.get("stages") or {}
    rows = [("stage", "count", "mean", "p50", "p95", "p99", "max")]
    for name, summary in stages.items():
        if summary is None:
            rows.append((name, "0", "-", "-", "-", "-", "-"))
            continue
        rows.append(
            (
                name,
                _fmt(summary.get("count")),
                _fmt(summary.get("mean")),
                _fmt(summary.get("p50")),
                _fmt(summary.get("p95")),
                _fmt(summary.get("p99")),
                _fmt(summary.get("max")),
            )
        )
    if len(rows) > 1:
        lines.extend(_table(rows, "  "))
    return lines


_WAIT_STATE_ORDER = (
    "blocked_send", "sequencer_queue", "transit",
    "suspicion_hold", "causal_hold", "latency",
)


def _render_journey_tree(journey: Mapping[str, Any], indent: str = "  ") -> List[str]:
    """One journey as a span tree: header line + timestamped transitions."""
    lines = [
        indent
        + f"{journey.get('msg_id')}  cause={journey.get('cause')}  "
        + f"sender={journey.get('sender')}  group={journey.get('group')}  "
        + f"deliveries={_fmt(journey.get('deliveries'))}  "
        + f"latency={_fmt(journey.get('latency'))}"
    ]
    created = journey.get("created_at") or 0.0
    transitions = journey.get("transitions") or []
    for index, transition in enumerate(transitions):
        state, time, process, detail = (list(transition) + [None] * 4)[:4]
        connector = "└─" if index == len(transitions) - 1 else "├─"
        offset = time - created if isinstance(time, (int, float)) else None
        at = f" @{process}" if process else ""
        suffix = f" ({_fmt(detail)})" if detail not in (None, "") else ""
        lines.append(f"{indent}  {connector} +{_fmt(offset)} {state}{at}{suffix}")
    if journey.get("truncated_transitions"):
        lines.append(
            f"{indent}     ... {_fmt(journey['truncated_transitions'])} "
            "more transitions truncated"
        )
    return lines


def _render_journeys(journeys: Mapping[str, Any]) -> List[str]:
    lines = [
        f"journeys: {_fmt(journeys.get('tracked'))} tracked "
        f"(1 in {_fmt(journeys.get('sample_rate'))}, "
        f"seed {_fmt(journeys.get('seed'))})"
        + (
            f", {_fmt(journeys.get('overflow'))} overflowed"
            if journeys.get("overflow")
            else ""
        )
    ]
    by_cause = journeys.get("sends_by_cause") or {}
    total = sum(by_cause.values())
    if by_cause:
        lines.append(
            f"  sends by cause (partition of transport.sends = {_fmt(total)})"
        )
        rows = []
        for cause, count in sorted(by_cause.items(), key=lambda kv: (-kv[1], kv[0])):
            share = count / total if total else 0.0
            rows.append(
                (cause, _fmt(count), f"{share * 100:.1f}%",
                 "#" * int(round(share * _BAR_WIDTH)))
            )
        lines.extend(_table(rows, "    "))
    wait_states = journeys.get("wait_states") or {}
    if wait_states:
        lines.append("  wait states by cause (sampled journeys)")
        rows = [("cause", "wait state", "count", "mean", "p50", "p90", "p99", "max")]
        for cause in sorted(wait_states):
            stages = wait_states[cause] or {}
            ordered = [stage for stage in _WAIT_STATE_ORDER if stage in stages]
            ordered += [stage for stage in sorted(stages) if stage not in ordered]
            for stage in ordered:
                summary = stages[stage] or {}
                rows.append(
                    (cause, stage, _fmt(summary.get("count")),
                     _fmt(summary.get("mean")), _fmt(summary.get("p50")),
                     _fmt(summary.get("p90")), _fmt(summary.get("p99")),
                     _fmt(summary.get("max")))
                )
        lines.extend(_table(rows, "    "))
    slowest = journeys.get("slowest") or []
    if slowest:
        lines.append("  slowest sampled journeys")
        for journey in slowest:
            lines.extend(_render_journey_tree(journey, "    "))
    forced = journeys.get("forced") or []
    if forced:
        lines.append("  pinned journeys (force_ids)")
        for journey in forced:
            lines.extend(_render_journey_tree(journey, "    "))
    return lines


#: Fuzz-campaign outcome states (mirrors ``repro.scenarios.fuzz.STATUSES``;
#: duplicated here so rendering a JSON never imports the scenario engine).
_FUZZ_STATUSES = ("pass", "violation", "stall", "crashed", "timeout")


def _render_fuzz(document: Mapping[str, Any]) -> List[str]:
    """Fuzz campaign tallies / repro-artifact sections, when present."""
    lines: List[str] = []
    tallies = document.get("tallies")
    if isinstance(tallies, Mapping) and set(tallies) & set(_FUZZ_STATUSES):
        failures = [
            failure for failure in document.get("failures") or ()
            if isinstance(failure, Mapping)
        ]
        shrink_steps = sum(failure.get("shrink_runs") or 0 for failure in failures)
        lines.append("fuzz campaign")
        rows = [("specs run", _fmt(document.get("count", sum(tallies.values()))))]
        for status in _FUZZ_STATUSES:
            if status in tallies:
                rows.append((f"  {status}", _fmt(tallies[status])))
        if "specs_per_minute" in document:
            rows.append(("specs/min", _fmt(document["specs_per_minute"])))
        rows.append(("shrink steps", _fmt(shrink_steps)))
        lines.extend(_table(rows, "  "))
        oracle = document.get("oracle")
        if isinstance(oracle, Mapping):
            shrunk = oracle.get("shrunk_events")
            lines.append(
                f"  oracle arm: {_fmt(oracle.get('violations'))} "
                f"{oracle.get('violation_kind') or '?'} violation(s) in "
                f"{_fmt(oracle.get('budget'))} specs"
                + (f", shrunk to {_fmt(shrunk)} event(s)" if shrunk is not None else "")
            )
    if document.get("kind") == "fuzz-repro":
        lines.append("fuzz repro artifact")
        lines.extend(_table([
            ("status", str(document.get("status"))),
            ("violation kind", str(document.get("violation_kind"))),
            ("shrink runs", _fmt(document.get("shrink_runs"))),
        ], "  "))
        for violation in (document.get("violations") or [])[:5]:
            lines.append(f"  - {violation}")
        journeys = document.get("journeys")
        if isinstance(journeys, list) and journeys:
            lines.append("  implicated message journeys")
            for journey in journeys:
                if isinstance(journey, Mapping):
                    lines.extend(_render_journey_tree(journey, "    "))
    return lines


def render_obs(obs: Mapping[str, Any], title: str = "") -> str:
    """Render one observation snapshot into a text block."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if obs.get("metrics"):
        lines.extend(_render_metrics(obs["metrics"]))
    if obs.get("samples"):
        lines.extend(_render_samples(obs["samples"]))
    if obs.get("profile"):
        lines.extend(_render_profile(obs["profile"]))
    if obs.get("spans"):
        lines.extend(_render_spans(obs["spans"]))
    if obs.get("journeys"):
        lines.extend(_render_journeys(obs["journeys"]))
    if obs.get("sink_errors"):
        lines.append(f"sink errors: {obs['sink_errors']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Whole-document rendering
# ----------------------------------------------------------------------
def find_obs_blocks(node: Any, path: str = "") -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Yield every ``obs`` block in a JSON document as ``(path, block)``."""
    if isinstance(node, Mapping):
        for key, value in node.items():
            child_path = f"{path}.{key}" if path else str(key)
            if key == "obs" and isinstance(value, Mapping):
                yield child_path, dict(value)
            else:
                yield from find_obs_blocks(value, child_path)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from find_obs_blocks(value, f"{path}[{index}]")


_HEADER_KEYS = (
    "benchmark", "scale", "seed", "wall_seconds",
    "schema_version", "git_sha", "python_version",
)


def render_document(document: Mapping[str, Any], source: str = "") -> str:
    """Render a bench/result JSON: header summary + every obs block."""
    lines: List[str] = []
    title = document.get("benchmark") or source or "result"
    lines.append(f"== {title} ==")
    header_rows = [
        (key, _fmt(document[key])) for key in _HEADER_KEYS if key in document
    ]
    lines.extend(_table(header_rows))
    summary_keys = [
        key
        for key in ("events_per_second", "deliveries", "messages_sent", "events_processed")
        if key in document
    ]
    if summary_keys:
        lines.extend(_table([(key, _fmt(document[key])) for key in summary_keys]))
    fuzz_lines = _render_fuzz(document)
    if fuzz_lines:
        lines.append("")
        lines.extend(fuzz_lines)
    blocks = list(find_obs_blocks(document))
    if not blocks and not fuzz_lines:
        lines.append("")
        lines.append("(no obs blocks in this document -- rerun with --observe)")
    for path, block in blocks:
        lines.append("")
        lines.append(render_obs(block, title=f"obs @ {path}"))
    return "\n".join(lines)


def document_has_renderable_content(document: Any) -> bool:
    """Whether ``report`` has anything beyond the header to show: an ``obs``
    block anywhere, or a fuzz campaign / repro-artifact shape."""
    if not isinstance(document, Mapping):
        return False
    if any(True for _ in find_obs_blocks(document)):
        return True
    return bool(_render_fuzz(document))


def document_has_journeys(document: Any) -> bool:
    """Whether the journey explorer has anything to show for ``document``."""
    if not isinstance(document, Mapping):
        return False
    for _, block in find_obs_blocks(document):
        if isinstance(block.get("journeys"), Mapping):
            return True
    journeys = document.get("journeys")
    return isinstance(journeys, list) and bool(journeys)


def render_journey_document(document: Mapping[str, Any], source: str = "") -> str:
    """The journey explorer view: every ``journeys`` block's span trees and
    by-cause / by-wait-state breakdowns, plus fuzz-artifact journeys."""
    title = document.get("benchmark") or source or "result"
    lines: List[str] = [f"== {title}: journeys =="]
    found = False
    for path, block in find_obs_blocks(document):
        journeys = block.get("journeys")
        if not isinstance(journeys, Mapping):
            continue
        found = True
        lines.append("")
        lines.append(f"journeys @ {path}.journeys")
        lines.extend(_render_journeys(journeys))
    artifact_journeys = document.get("journeys")
    if isinstance(artifact_journeys, list) and artifact_journeys:
        found = True
        lines.append("")
        lines.append("implicated message journeys")
        for journey in artifact_journeys:
            if isinstance(journey, Mapping):
                lines.extend(_render_journey_tree(journey, "  "))
    if not found:
        lines.append("")
        lines.append(
            "(no journeys in this document -- rerun with --observe journeys)"
        )
    return "\n".join(lines)


def paste_columns(rendered: List[str], gap: str = "  │ ") -> str:
    """Join fully-rendered text blocks side-by-side, one column each."""
    split = [text.split("\n") for text in rendered]
    height = max(len(column) for column in split)
    widths = [max((len(line) for line in column), default=0) for column in split]
    lines = []
    for row in range(height):
        cells = [
            (column[row] if row < len(column) else "").ljust(width)
            for column, width in zip(split, widths)
        ]
        lines.append(gap.join(cells).rstrip())
    return "\n".join(lines)
