"""Human-readable rendering of observation snapshots and bench JSONs.

``render_obs`` turns one observation snapshot (the ``obs`` block a
:class:`~repro.obs.Observation` emits) into aligned text tables;
``render_document`` walks any JSON document produced by the benchmark
harness (session results, scenario shards, sweep grids, BENCH files),
renders its header, and finds every embedded ``obs`` block wherever it
rides.  ``python -m repro.obs report FILE`` is the CLI front end.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["render_obs", "render_document", "find_obs_blocks"]

_BAR_WIDTH = 30
_BLOCKS = " ▁▂▃▄▅▆▇█"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.5f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _table(rows: List[Tuple[str, ...]], indent: str = "  ") -> List[str]:
    if not rows:
        return []
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for row in rows:
        cells = [cell.ljust(width) for cell, width in zip(row, widths)]
        lines.append(indent + "  ".join(cells).rstrip())
    return lines


def _sparkline(values: List[Optional[float]]) -> str:
    """One-character-per-sample curve; gaps (``None``) render as ``.``."""
    present = [value for value in values if value is not None]
    if not present:
        return ""
    low, high = min(present), max(present)
    span = (high - low) or 1.0
    chars = []
    for value in values:
        if value is None:
            chars.append(".")
        else:
            chars.append(_BLOCKS[1 + int((value - low) / span * (len(_BLOCKS) - 2))])
    return "".join(chars)


# ----------------------------------------------------------------------
# Section renderers
# ----------------------------------------------------------------------
def _render_metrics(metrics: Mapping[str, Any]) -> List[str]:
    lines = ["metrics"]
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("  counters")
        lines.extend(_table([(name, _fmt(value)) for name, value in counters.items()], "    "))
    gauges = metrics.get("gauges") or {}
    if gauges:
        lines.append("  gauges (at snapshot)")
        rows = []
        for name, value in gauges.items():
            if isinstance(value, Mapping):
                rows.append((name, _fmt(value.get("value")), f"peak {_fmt(value.get('peak'))}"))
            else:
                rows.append((name, _fmt(value), ""))
        lines.extend(_table(rows, "    "))
    histograms = metrics.get("histograms") or {}
    for name, hist in histograms.items():
        lines.append(
            f"  histogram {name}: count={_fmt(hist.get('count'))} "
            f"mean={_fmt(hist.get('mean'))} max={_fmt(hist.get('max'))}"
        )
        buckets = hist.get("buckets") or {}
        total = sum(buckets.values()) or 1
        rows = []
        # JSON round-trips sort keys lexicographically (le_1, le_128,
        # le_16 ...); restore numeric bucket order, overflow last.

        def _edge_key(edge: str) -> Tuple[int, float]:
            if edge.startswith("le_"):
                try:
                    return (0, float(edge[3:]))
                except ValueError:
                    pass
            return (1, 0.0)

        for edge in sorted(buckets, key=_edge_key):
            hits = buckets[edge]
            bar = "#" * int(round(hits / total * _BAR_WIDTH))
            rows.append((edge, _fmt(hits), bar))
        lines.extend(_table(rows, "    "))
    return lines


def _render_samples(samples: Mapping[str, Any]) -> List[str]:
    times = samples.get("times") or []
    lines = [
        f"sampler: {len(times)} samples at interval {_fmt(samples.get('interval'))}"
        + (f" (t={_fmt(times[0])}..{_fmt(times[-1])})" if times else "")
    ]
    curve = samples.get("messages_per_delivery") or []
    present = [value for value in curve if value is not None]
    if present:
        lines.append("  messages per delivery over time (ROADMAP item 1 baseline)")
        lines.append(f"    {_sparkline(curve)}")
        lines.append(
            f"    min={_fmt(min(present))}  max={_fmt(max(present))}  "
            f"last={_fmt(present[-1])}  intervals_with_deliveries={len(present)}/{len(curve)}"
        )
    gauges = samples.get("gauges") or {}
    rows = []
    for name, column in gauges.items():
        if not column:
            continue
        rows.append(
            (name, f"last {_fmt(column[-1])}", f"peak {_fmt(max(column))}",
             _sparkline(list(column)))
        )
    if rows:
        lines.append("  gauge series")
        lines.extend(_table(rows, "    "))
    return lines


def _render_profile(profile: Mapping[str, Any]) -> List[str]:
    lines = [f"profiler: {_fmt(profile.get('total_seconds'))}s attributed wall time"]
    sections = profile.get("sections") or {}
    top = profile.get("top") or []
    if top:
        lines.append("  top hotspots")
        rows = []
        for entry in top:
            name = entry.get("section", "?")
            detail = sections.get(name, {})
            share = detail.get("share")
            rows.append(
                (
                    name,
                    f"{_fmt(entry.get('seconds'))}s",
                    f"{_fmt(detail.get('calls'))} calls",
                    f"{_fmt(detail.get('mean_us'))}us/call",
                    f"{share * 100:.1f}%" if share is not None else "(nested)",
                )
            )
        lines.extend(_table(rows, "    "))
    return lines


def _render_spans(spans: Mapping[str, Any]) -> List[str]:
    lines = [
        f"spans: {_fmt(spans.get('tracked_messages'))} messages tracked"
        + (
            f", {_fmt(spans.get('dropped_messages'))} dropped"
            if spans.get("dropped_messages")
            else ""
        )
    ]
    stages = spans.get("stages") or {}
    rows = [("stage", "count", "mean", "p50", "p95", "p99", "max")]
    for name, summary in stages.items():
        if summary is None:
            rows.append((name, "0", "-", "-", "-", "-", "-"))
            continue
        rows.append(
            (
                name,
                _fmt(summary.get("count")),
                _fmt(summary.get("mean")),
                _fmt(summary.get("p50")),
                _fmt(summary.get("p95")),
                _fmt(summary.get("p99")),
                _fmt(summary.get("max")),
            )
        )
    if len(rows) > 1:
        lines.extend(_table(rows, "  "))
    return lines


def render_obs(obs: Mapping[str, Any], title: str = "") -> str:
    """Render one observation snapshot into a text block."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if obs.get("metrics"):
        lines.extend(_render_metrics(obs["metrics"]))
    if obs.get("samples"):
        lines.extend(_render_samples(obs["samples"]))
    if obs.get("profile"):
        lines.extend(_render_profile(obs["profile"]))
    if obs.get("spans"):
        lines.extend(_render_spans(obs["spans"]))
    if obs.get("sink_errors"):
        lines.append(f"sink errors: {obs['sink_errors']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Whole-document rendering
# ----------------------------------------------------------------------
def find_obs_blocks(node: Any, path: str = "") -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Yield every ``obs`` block in a JSON document as ``(path, block)``."""
    if isinstance(node, Mapping):
        for key, value in node.items():
            child_path = f"{path}.{key}" if path else str(key)
            if key == "obs" and isinstance(value, Mapping):
                yield child_path, dict(value)
            else:
                yield from find_obs_blocks(value, child_path)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from find_obs_blocks(value, f"{path}[{index}]")


_HEADER_KEYS = (
    "benchmark", "scale", "seed", "wall_seconds",
    "schema_version", "git_sha", "python_version",
)


def render_document(document: Mapping[str, Any], source: str = "") -> str:
    """Render a bench/result JSON: header summary + every obs block."""
    lines: List[str] = []
    title = document.get("benchmark") or source or "result"
    lines.append(f"== {title} ==")
    header_rows = [
        (key, _fmt(document[key])) for key in _HEADER_KEYS if key in document
    ]
    lines.extend(_table(header_rows))
    summary_keys = [
        key
        for key in ("events_per_second", "deliveries", "messages_sent", "events_processed")
        if key in document
    ]
    if summary_keys:
        lines.extend(_table([(key, _fmt(document[key])) for key in summary_keys]))
    blocks = list(find_obs_blocks(document))
    if not blocks:
        lines.append("")
        lines.append("(no obs blocks in this document -- rerun with --observe)")
    for path, block in blocks:
        lines.append("")
        lines.append(render_obs(block, title=f"obs @ {path}"))
    return "\n".join(lines)
