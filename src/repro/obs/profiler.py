"""Wall-clock attribution of simulator callbacks by category.

The profiler answers ROADMAP item 2's "profile the FULL-scale E23 run"
without an external tool: the simulator's :meth:`step` hot loop, when a
profiler is installed, times each callback with ``perf_counter`` and files
the elapsed wall time under a *category* derived from the event's label
("deliver ->p17" → ``delivery_batch``, "suspector" → a timer-fire
category, ...).  Two nested sections are timed inside their enclosing
callbacks -- ``protocol_receive`` (the transport's per-batch protocol
dispatch) and ``sink_fanout`` (the trace recorder's sink loop) -- so their
seconds are *subsets* of the enclosing category, not additive with it;
:meth:`snapshot` marks them as such.

The profiler is wall-clock only: it never reads simulated time, never
touches the RNG and never schedules events, so attaching it cannot perturb
determinism -- only wall-clock speed (roughly two ``perf_counter`` calls
per event).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Tuple

__all__ = ["HotPathProfiler", "perf_counter"]

#: Sections timed *inside* another callback; their time double-counts with
#: the enclosing category and is excluded from share-of-total maths.
NESTED_SECTIONS = frozenset({"protocol_receive", "sink_fanout"})


class _Section:
    __slots__ = ("calls", "seconds", "max_seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.max_seconds = 0.0


class HotPathProfiler:
    """Accumulates per-category call counts and wall seconds."""

    def __init__(self) -> None:
        self._sections: Dict[str, _Section] = {}
        #: Label -> category memo; label strings repeat heavily (every
        #: process reuses its own "deliver ->X" string object), so this is
        #: one dict hit per event after warm-up.
        self._category_cache: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------
    def record(self, section: str, elapsed: float) -> None:
        """File ``elapsed`` wall seconds under ``section``."""
        record = self._sections.get(section)
        if record is None:
            record = self._sections[section] = _Section()
        record.calls += 1
        record.seconds += elapsed
        if elapsed > record.max_seconds:
            record.max_seconds = elapsed

    def record_event(self, label: str, elapsed: float) -> None:
        """File one simulator-callback execution under its label's category."""
        category = self._category_cache.get(label)
        if category is None:
            category = self._category_cache[label] = self._categorize(label)
        self.record(category, elapsed)

    @staticmethod
    def _categorize(label: str) -> str:
        if not label:
            return "uncategorized"
        if label.startswith("deliver"):
            return "delivery_batch"
        if label == "suspector":
            return "timer_fire:suspector"
        if label == "time-silence":
            return "timer_fire:time_silence"
        if label.startswith("scenario"):
            return "scenario_event"
        if label.startswith("obs"):
            return "obs_sampler"
        if label.startswith("workload"):
            return "workload"
        head = label.split(" ", 1)[0].rstrip(":")
        return "timer_fire:" + head

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Attributed wall seconds, nested (double-counted) sections excluded."""
        return sum(
            section.seconds
            for name, section in self._sections.items()
            if name not in NESTED_SECTIONS
        )

    def top(self, n: int = 10) -> List[Tuple[str, float]]:
        """The ``n`` most expensive categories as ``(name, seconds)``."""
        ranked = sorted(
            self._sections.items(), key=lambda item: item[1].seconds, reverse=True
        )
        return [(name, section.seconds) for name, section in ranked[:n]]

    def snapshot(self, top_n: int = 10) -> Dict[str, object]:
        total = self.total_seconds
        sections = {}
        for name, section in sorted(self._sections.items()):
            sections[name] = {
                "calls": section.calls,
                "seconds": round(section.seconds, 6),
                "mean_us": round(section.seconds / section.calls * 1e6, 3)
                if section.calls
                else 0.0,
                "max_us": round(section.max_seconds * 1e6, 3),
                "share": round(section.seconds / total, 4)
                if total and name not in NESTED_SECTIONS
                else None,
                "nested": name in NESTED_SECTIONS,
            }
        return {
            "total_seconds": round(total, 6),
            "top": [
                {"section": name, "seconds": round(seconds, 6)}
                for name, seconds in self.top(top_n)
            ],
            "sections": sections,
        }
